package gbt

import "sort"

// FeatureImportance summarizes how much each feature contributed to the
// ensemble, XGBoost-style. Gain is the total split gain attributed to the
// feature; Cover counts how many splits used it.
type FeatureImportance struct {
	Feature int
	Gain    float64
	Cover   int
}

// Importance returns per-feature importance sorted by descending gain.
// Features that were never split on are omitted.
func (m *Model) Importance() []FeatureImportance {
	gain := map[int]float64{}
	cover := map[int]int{}
	for _, t := range m.trees {
		walkImportance(t, gain, cover)
	}
	out := make([]FeatureImportance, 0, len(gain))
	for f, g := range gain {
		out = append(out, FeatureImportance{Feature: f, Gain: g, Cover: cover[f]})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Gain != out[b].Gain {
			return out[a].Gain > out[b].Gain
		}
		return out[a].Feature < out[b].Feature
	})
	return out
}

func walkImportance(n *node, gain map[int]float64, cover map[int]int) {
	if n == nil || n.leaf {
		return
	}
	gain[n.feature] += n.gain
	cover[n.feature]++
	walkImportance(n.left, gain, cover)
	walkImportance(n.right, gain, cover)
}
