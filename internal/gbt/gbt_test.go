package gbt

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/tensor"
)

func makeRegression(n int, seed uint64, f func(x []float64) float64) ([][]float64, []float64) {
	r := tensor.NewRNG(seed)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		X[i] = []float64{r.Float64(), r.Float64(), r.Float64()}
		y[i] = f(X[i])
	}
	return X, y
}

func TestFitRejectsBadInput(t *testing.T) {
	if _, err := Fit(nil, nil, Config{}); err == nil {
		t.Fatal("expected error on empty input")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, Config{}); err == nil {
		t.Fatal("expected error on size mismatch")
	}
}

func TestFitsStepFunction(t *testing.T) {
	// Trees excel at axis-aligned steps: y = 1 if x0 > 0.5 else 0.
	X, y := makeRegression(500, 1, func(x []float64) float64 {
		if x[0] > 0.5 {
			return 1
		}
		return 0
	})
	m, err := Fit(X, y, Config{Rounds: 50, MaxDepth: 3, LearningRate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	preds := m.PredictBatch(X)
	if mse := metrics.MSE(y, preds); mse > 1e-3 {
		t.Fatalf("MSE on step function = %g", mse)
	}
}

func TestFitsAdditiveFunction(t *testing.T) {
	X, y := makeRegression(800, 2, func(x []float64) float64 {
		return 2*x[0] + math.Sin(4*x[1])
	})
	m, err := Fit(X, y, Config{Rounds: 200, MaxDepth: 4, LearningRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	Xte, yte := makeRegression(200, 3, func(x []float64) float64 {
		return 2*x[0] + math.Sin(4*x[1])
	})
	if mse := metrics.MSE(yte, m.PredictBatch(Xte)); mse > 0.02 {
		t.Fatalf("test MSE = %g", mse)
	}
}

func TestConstantTargetGivesConstantPrediction(t *testing.T) {
	X, y := makeRegression(100, 4, func([]float64) float64 { return 3.5 })
	m, err := Fit(X, y, Config{Rounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range m.PredictBatch(X) {
		if math.Abs(p-3.5) > 1e-9 {
			t.Fatalf("prediction %g, want 3.5", p)
		}
	}
}

func TestBaseIsTrainingMean(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{1, 2, 3, 6}
	m, err := Fit(X, y, Config{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Base != 3 {
		t.Fatalf("Base = %g, want 3", m.Base)
	}
}

func TestMoreRoundsReduceTrainingLoss(t *testing.T) {
	X, y := makeRegression(400, 5, func(x []float64) float64 {
		return x[0]*x[1] + x[2]
	})
	m, err := Fit(X, y, Config{Rounds: 100, MaxDepth: 3, LearningRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	losses := m.StagedLoss(X, y)
	if len(losses) != 100 {
		t.Fatalf("staged losses = %d", len(losses))
	}
	if losses[99] >= losses[9] {
		t.Fatalf("boosting did not reduce loss: %g -> %g", losses[9], losses[99])
	}
	// Monotone non-increasing within tolerance for squared loss with shrinkage.
	for i := 1; i < len(losses); i++ {
		if losses[i] > losses[i-1]*1.05 {
			t.Fatalf("loss jumped at round %d: %g -> %g", i, losses[i-1], losses[i])
		}
	}
}

func TestGammaPrunesSplits(t *testing.T) {
	// With an enormous γ no split is worth making: every tree is a single
	// leaf and, since leaves then predict −G/(H+λ) of the full sample, the
	// model stays near the mean.
	X, y := makeRegression(200, 6, func(x []float64) float64 { return x[0] })
	strong, err := Fit(X, y, Config{Rounds: 20, Gamma: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	weakSpread := 0.0
	preds := strong.PredictBatch(X)
	for _, p := range preds {
		if d := math.Abs(p - strong.Base); d > weakSpread {
			weakSpread = d
		}
	}
	if weakSpread > 0.05 {
		t.Fatalf("γ=1e9 still produced varied predictions (spread %g)", weakSpread)
	}
}

func TestMinChildWeightLimitsLeafSize(t *testing.T) {
	X, y := makeRegression(100, 7, func(x []float64) float64 { return x[0] })
	// MinChildWeight = 60 means no child can have fewer than 60 samples
	// (hessian 1 each), so no split of 100 rows is feasible except 60/40 —
	// actually none, since both children need ≥ 60. Trees must be stumps
	// predicting ~0 residual after round 1.
	m, err := Fit(X, y, Config{Rounds: 5, MinChildWeight: 60})
	if err != nil {
		t.Fatal(err)
	}
	preds := m.PredictBatch(X)
	for _, p := range preds {
		if math.Abs(p-m.Base) > 0.05 {
			t.Fatal("min_child_weight failed to suppress splits")
		}
	}
}

func TestSubsamplingStillLearns(t *testing.T) {
	X, y := makeRegression(600, 8, func(x []float64) float64 { return 3 * x[1] })
	m, err := Fit(X, y, Config{
		Rounds: 150, MaxDepth: 3, LearningRate: 0.1,
		Subsample: 0.7, ColSample: 0.7, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mse := metrics.MSE(y, m.PredictBatch(X)); mse > 0.02 {
		t.Fatalf("subsampled model MSE = %g", mse)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	X, y := makeRegression(200, 10, func(x []float64) float64 { return x[0] + x[2] })
	cfg := Config{Rounds: 30, Subsample: 0.8, ColSample: 0.8, Seed: 42}
	m1, _ := Fit(X, y, cfg)
	m2, _ := Fit(X, y, cfg)
	p1 := m1.PredictBatch(X)
	p2 := m2.PredictBatch(X)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same seed must give identical models")
		}
	}
}

func TestLearningRateShrinkage(t *testing.T) {
	X, y := makeRegression(300, 11, func(x []float64) float64 { return x[0] })
	fast, _ := Fit(X, y, Config{Rounds: 5, LearningRate: 0.5})
	slow, _ := Fit(X, y, Config{Rounds: 5, LearningRate: 0.01})
	mseFast := metrics.MSE(y, fast.PredictBatch(X))
	mseSlow := metrics.MSE(y, slow.PredictBatch(X))
	if mseFast >= mseSlow {
		t.Fatalf("after 5 rounds, η=0.5 (%g) should beat η=0.01 (%g)", mseFast, mseSlow)
	}
}

func TestNTrees(t *testing.T) {
	X, y := makeRegression(50, 12, func(x []float64) float64 { return x[0] })
	m, _ := Fit(X, y, Config{Rounds: 17})
	if m.NTrees() != 17 {
		t.Fatalf("NTrees = %d, want 17", m.NTrees())
	}
}
