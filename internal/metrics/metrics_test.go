package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMSEKnown(t *testing.T) {
	y := []float64{1, 2, 3}
	yhat := []float64{1, 3, 5}
	if got := MSE(y, yhat); math.Abs(got-5.0/3.0) > 1e-12 {
		t.Fatalf("MSE = %g", got)
	}
}

func TestMAEKnown(t *testing.T) {
	y := []float64{1, 2, 3}
	yhat := []float64{2, 2, 1}
	if got := MAE(y, yhat); math.Abs(got-1) > 1e-12 {
		t.Fatalf("MAE = %g", got)
	}
}

func TestRMSEIsSqrtMSE(t *testing.T) {
	y := []float64{0, 0}
	yhat := []float64{3, 4}
	if got := RMSE(y, yhat); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Fatalf("RMSE = %g", got)
	}
}

func TestPerfectPredictionIsZeroErrorAndR2One(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	if MSE(y, y) != 0 || MAE(y, y) != 0 {
		t.Fatal("perfect prediction should have zero error")
	}
	if got := R2(y, y); got != 1 {
		t.Fatalf("R2 = %g, want 1", got)
	}
}

func TestMAPESkipsZeros(t *testing.T) {
	y := []float64{0, 2}
	yhat := []float64{5, 1}
	if got := MAPE(y, yhat); math.Abs(got-50) > 1e-12 {
		t.Fatalf("MAPE = %g, want 50", got)
	}
	if !math.IsNaN(MAPE([]float64{0, 0}, []float64{1, 1})) {
		t.Fatal("all-zero truth should give NaN MAPE")
	}
}

func TestR2MeanPredictorIsZero(t *testing.T) {
	y := []float64{1, 2, 3, 4, 5}
	mean := []float64{3, 3, 3, 3, 3}
	if got := R2(y, mean); math.Abs(got) > 1e-12 {
		t.Fatalf("R2 of mean predictor = %g, want 0", got)
	}
}

func TestR2ConstantTruthNaN(t *testing.T) {
	if !math.IsNaN(R2([]float64{2, 2}, []float64{1, 3})) {
		t.Fatal("R2 with constant truth should be NaN")
	}
}

func TestEmptyInputNaN(t *testing.T) {
	if !math.IsNaN(MSE(nil, nil)) || !math.IsNaN(MAE(nil, nil)) {
		t.Fatal("empty metrics should be NaN")
	}
}

func TestUnequalLengthUsesPrefix(t *testing.T) {
	y := []float64{1, 2, 99}
	yhat := []float64{1, 2}
	if MSE(y, yhat) != 0 {
		t.Fatal("prefix comparison failed")
	}
}

func TestEvaluateBundlesBoth(t *testing.T) {
	r := Evaluate([]float64{1, 2}, []float64{2, 2})
	if r.MSE != 0.5 || r.MAE != 0.5 {
		t.Fatalf("Evaluate = %+v", r)
	}
}

// Property: MSE ≥ MAE² (Jensen) and both are non-negative.
func TestPropertyMSEAtLeastMAESquared(t *testing.T) {
	f := func(seed uint64) bool {
		s := seed | 1
		next := func() float64 {
			s ^= s >> 12
			s ^= s << 25
			s ^= s >> 27
			return float64((s*0x2545f4914f6cdd1d)>>11)/(1<<53)*2 - 1
		}
		y := make([]float64, 16)
		yhat := make([]float64, 16)
		for i := range y {
			y[i] = next()
			yhat[i] = next()
		}
		mse := MSE(y, yhat)
		mae := MAE(y, yhat)
		return mse >= mae*mae-1e-12 && mse >= 0 && mae >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: metrics are symmetric in (y, yhat).
func TestPropertyMetricsSymmetric(t *testing.T) {
	y := []float64{1, 4, 2, 8}
	yhat := []float64{2, 3, 5, 7}
	if MSE(y, yhat) != MSE(yhat, y) || MAE(y, yhat) != MAE(yhat, y) {
		t.Fatal("MSE/MAE must be symmetric")
	}
}
