// Package metrics implements the evaluation metrics of the paper
// (MSE, eq. 9; MAE, eq. 10) plus the common companions RMSE, MAPE and R².
package metrics

import "math"

// MSE returns the mean squared error between truth y and prediction yhat.
// Only the common prefix of the two slices is compared; it returns NaN for
// empty input.
func MSE(y, yhat []float64) float64 {
	n := minLen(y, yhat)
	if n == 0 {
		return math.NaN()
	}
	s := 0.0
	for i := 0; i < n; i++ {
		d := y[i] - yhat[i]
		s += d * d
	}
	return s / float64(n)
}

// MAE returns the mean absolute error.
func MAE(y, yhat []float64) float64 {
	n := minLen(y, yhat)
	if n == 0 {
		return math.NaN()
	}
	s := 0.0
	for i := 0; i < n; i++ {
		s += math.Abs(y[i] - yhat[i])
	}
	return s / float64(n)
}

// RMSE returns the root mean squared error.
func RMSE(y, yhat []float64) float64 { return math.Sqrt(MSE(y, yhat)) }

// MAPE returns the mean absolute percentage error in percent, skipping
// points where the truth is zero (they would divide by zero). It returns
// NaN if every point is skipped.
func MAPE(y, yhat []float64) float64 {
	n := minLen(y, yhat)
	s, cnt := 0.0, 0
	for i := 0; i < n; i++ {
		if y[i] == 0 {
			continue
		}
		s += math.Abs((y[i] - yhat[i]) / y[i])
		cnt++
	}
	if cnt == 0 {
		return math.NaN()
	}
	return 100 * s / float64(cnt)
}

// R2 returns the coefficient of determination. A constant truth series
// yields NaN (undefined).
func R2(y, yhat []float64) float64 {
	n := minLen(y, yhat)
	if n == 0 {
		return math.NaN()
	}
	mean := 0.0
	for i := 0; i < n; i++ {
		mean += y[i]
	}
	mean /= float64(n)
	ssRes, ssTot := 0.0, 0.0
	for i := 0; i < n; i++ {
		d := y[i] - yhat[i]
		ssRes += d * d
		m := y[i] - mean
		ssTot += m * m
	}
	if ssTot == 0 {
		return math.NaN()
	}
	return 1 - ssRes/ssTot
}

func minLen(a, b []float64) int {
	if len(a) < len(b) {
		return len(a)
	}
	return len(b)
}

// Report bundles the two paper metrics for one evaluation.
type Report struct {
	MSE float64
	MAE float64
}

// Evaluate computes a Report for (y, yhat).
func Evaluate(y, yhat []float64) Report {
	return Report{MSE: MSE(y, yhat), MAE: MAE(y, yhat)}
}
