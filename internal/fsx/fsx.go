// Package fsx provides crash-safe filesystem helpers. Model snapshots
// and training checkpoints must never be observable half-written: a
// process killed mid-save should leave either the previous file or the
// new one, never a truncated hybrid that loads as a corrupt model.
package fsx

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/fault"
)

// WriteFileAtomic writes the payload produced by write to path with
// crash-safe semantics: the bytes go to a temporary file in the same
// directory (same filesystem, so the final step is a true rename), are
// fsynced to stable storage, and only then renamed over path. A failure
// at any step removes the temporary file and leaves any previous file
// at path untouched.
//
// The "fsx.write" fault point can inject an I/O error after the payload
// is written, exercising every caller's cleanup path.
func WriteFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("fsx: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = fault.Error("fsx.write"); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("fsx: sync %s: %w", tmp.Name(), err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("fsx: close %s: %w", tmp.Name(), err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("fsx: rename %s: %w", path, err)
	}
	// Persist the rename itself: fsync the directory so a crash right
	// after WriteFileAtomic returns cannot resurrect the old file. Some
	// filesystems reject directory syncs; that is not fatal.
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}
