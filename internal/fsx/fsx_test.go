package fsx

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

func TestWriteFileAtomicWritesPayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("hello"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
}

func TestWriteFileAtomicPreservesOldFileOnError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	if err := os.WriteFile(path, []byte("previous"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("encoder exploded")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		w.Write([]byte("partial garbage")) //nolint:errcheck
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "previous" {
		t.Fatalf("old file not preserved: %q, %v", got, err)
	}
	leftover, err := filepath.Glob(filepath.Join(dir, "*.tmp-*"))
	if err != nil || len(leftover) != 0 {
		t.Fatalf("temp files left behind: %v %v", leftover, err)
	}
}

func TestWriteFileAtomicFaultInjection(t *testing.T) {
	inj := fault.NewInjector(fault.Rule{Scope: "fsx.write", Kind: fault.KindError})
	defer fault.Activate(inj)()
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("doomed"))
		return err
	})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("target file exists after injected failure: %v", err)
	}
	leftover, _ := filepath.Glob(filepath.Join(dir, "*.tmp-*"))
	if len(leftover) != 0 {
		t.Fatalf("temp files left behind: %v", leftover)
	}
}
