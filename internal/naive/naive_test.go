package naive

import (
	"math"
	"testing"

	"repro/internal/metrics"
)

func TestPersistence(t *testing.T) {
	p := &Persistence{}
	if err := p.Fit(nil); err == nil {
		t.Fatal("expected error on empty series")
	}
	if err := p.Fit([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if p.OneStep() != 3 {
		t.Fatalf("OneStep = %g", p.OneStep())
	}
	p.Update(7)
	if p.OneStep() != 7 {
		t.Fatal("Update did not advance")
	}
	f := p.Forecast(3)
	if len(f) != 3 || f[0] != 7 || f[2] != 7 {
		t.Fatalf("Forecast = %v", f)
	}
}

func TestDriftExtrapolatesTrend(t *testing.T) {
	d := &Drift{}
	if err := d.Fit([]float64{5}); err == nil {
		t.Fatal("expected error on 1-point series")
	}
	// Perfect line y = 2t: slope 2.
	if err := d.Fit([]float64{0, 2, 4, 6}); err != nil {
		t.Fatal(err)
	}
	if got := d.OneStep(); math.Abs(got-8) > 1e-12 {
		t.Fatalf("OneStep = %g, want 8", got)
	}
	f := d.Forecast(3)
	if math.Abs(f[2]-12) > 1e-12 {
		t.Fatalf("Forecast = %v", f)
	}
	d.Update(8)
	if got := d.OneStep(); math.Abs(got-10) > 1e-12 {
		t.Fatalf("after update OneStep = %g, want 10", got)
	}
}

func TestSeasonalNaiveCycle(t *testing.T) {
	s := &SeasonalNaive{Period: 3}
	if err := s.Fit([]float64{1, 2}); err == nil {
		t.Fatal("expected error for too-short series")
	}
	if err := s.Fit([]float64{9, 9, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// Last period is [1,2,3]; predictions cycle through it.
	want := []float64{1, 2, 3, 1, 2}
	for i, w := range want {
		got := s.OneStep()
		if got != w {
			t.Fatalf("step %d = %g, want %g", i, got, w)
		}
		s.Update(got) // feeding the prediction keeps the cycle
	}
	if err := (&SeasonalNaive{Period: 0}).Fit([]float64{1}); err == nil {
		t.Fatal("expected error for period 0")
	}
}

func TestSeasonalNaiveForecastWrapsPeriod(t *testing.T) {
	s := &SeasonalNaive{Period: 2}
	if err := s.Fit([]float64{10, 20}); err != nil {
		t.Fatal(err)
	}
	f := s.Forecast(5)
	want := []float64{10, 20, 10, 20, 10}
	for i := range want {
		if f[i] != want[i] {
			t.Fatalf("Forecast = %v", f)
		}
	}
}

func TestMovingAverageWindow(t *testing.T) {
	m := &MovingAverage{Window: 3}
	if err := m.Fit([]float64{2, 4, 6, 8}); err != nil {
		t.Fatal(err)
	}
	if got := m.OneStep(); math.Abs(got-6) > 1e-12 { // mean(4,6,8)
		t.Fatalf("OneStep = %g, want 6", got)
	}
	m.Update(10) // window now 6,8,10
	if got := m.OneStep(); math.Abs(got-8) > 1e-12 {
		t.Fatalf("after update = %g, want 8", got)
	}
	if err := (&MovingAverage{Window: 0}).Fit([]float64{1}); err == nil {
		t.Fatal("expected error for window 0")
	}
}

func TestMovingAveragePartialFill(t *testing.T) {
	m := &MovingAverage{Window: 5}
	if err := m.Fit([]float64{3, 5}); err != nil {
		t.Fatal(err)
	}
	if got := m.OneStep(); math.Abs(got-4) > 1e-12 {
		t.Fatalf("partial window mean = %g, want 4", got)
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := &EWMA{Alpha: 0.5}
	if err := e.Fit([]float64{0}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		e.Update(10)
	}
	if math.Abs(e.OneStep()-10) > 1e-6 {
		t.Fatalf("EWMA level = %g, want ≈ 10", e.OneStep())
	}
	if err := (&EWMA{Alpha: 0}).Fit([]float64{1}); err == nil {
		t.Fatal("expected error for alpha 0")
	}
	if err := (&EWMA{Alpha: 1.5}).Fit([]float64{1}); err == nil {
		t.Fatal("expected error for alpha > 1")
	}
}

func TestEWMAAlphaOneIsPersistence(t *testing.T) {
	e := &EWMA{Alpha: 1}
	if err := e.Fit([]float64{1, 5, 9}); err != nil {
		t.Fatal(err)
	}
	if e.OneStep() != 9 {
		t.Fatalf("alpha=1 EWMA = %g, want 9", e.OneStep())
	}
}

func TestHoltTracksLinearTrend(t *testing.T) {
	ho := &Holt{Alpha: 0.8, Beta: 0.8}
	series := make([]float64, 50)
	for i := range series {
		series[i] = 3 * float64(i)
	}
	if err := ho.Fit(series); err != nil {
		t.Fatal(err)
	}
	if got := ho.OneStep(); math.Abs(got-150) > 1 {
		t.Fatalf("Holt one-step = %g, want ≈ 150", got)
	}
	f := ho.Forecast(10)
	if math.Abs(f[9]-177) > 3 {
		t.Fatalf("Holt 10-step = %g, want ≈ 177", f[9])
	}
}

func TestHoltValidation(t *testing.T) {
	if err := (&Holt{Alpha: 0.5, Beta: 0}).Fit([]float64{1, 2}); err == nil {
		t.Fatal("expected error for beta 0")
	}
	if err := (&Holt{Alpha: 0.5, Beta: 0.5}).Fit([]float64{1}); err == nil {
		t.Fatal("expected error for short series")
	}
}

func TestRollingForecastBeatsRandomOnAR(t *testing.T) {
	// Persistence on a smooth AR(1) should have low error.
	s := uint64(7)
	next := func() float64 {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		return float64((s*0x2545f4914f6cdd1d)>>11)/(1<<53) - 0.5
	}
	series := make([]float64, 1000)
	for i := 1; i < len(series); i++ {
		series[i] = 0.98*series[i-1] + 0.05*next()
	}
	p := &Persistence{}
	if err := p.Fit(series[:800]); err != nil {
		t.Fatal(err)
	}
	preds := RollingForecast(p, series[800:])
	if mse := metrics.MSE(series[800:], preds); mse > 0.001 {
		t.Fatalf("persistence MSE on smooth AR = %g", mse)
	}
}

func TestAllForecastersImplementInterface(t *testing.T) {
	fs := []Forecaster{
		&Persistence{}, &Drift{}, &SeasonalNaive{Period: 2},
		&MovingAverage{Window: 2}, &EWMA{Alpha: 0.5}, &Holt{Alpha: 0.5, Beta: 0.5},
	}
	series := []float64{1, 2, 3, 4, 5, 6}
	for _, f := range fs {
		if err := f.Fit(series); err != nil {
			t.Fatalf("%T: %v", f, err)
		}
		if got := f.Forecast(4); len(got) != 4 {
			t.Fatalf("%T Forecast length %d", f, len(got))
		}
		preds := RollingForecast(f, []float64{7, 8})
		if len(preds) != 2 {
			t.Fatalf("%T rolling length %d", f, len(preds))
		}
	}
}
