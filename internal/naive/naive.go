// Package naive provides the classical reference forecasters every
// prediction study should be measured against: persistence (naive-1),
// drift, seasonal naive, moving average, exponential smoothing, and Holt's
// linear trend method. They are cheap sanity baselines for the deep models
// and the building blocks of the capacity-planner example's "reactive"
// policy.
package naive

import (
	"errors"
	"fmt"
)

// Forecaster is the common interface: fit on history, then alternate
// OneStep (predict) and Update (absorb the realized value).
type Forecaster interface {
	// Fit initializes the forecaster from a history series.
	Fit(series []float64) error
	// OneStep returns the one-step-ahead forecast from the current state.
	OneStep() float64
	// Update absorbs the realized observation.
	Update(actual float64)
	// Forecast returns an h-step-ahead trajectory from the current state.
	Forecast(h int) []float64
}

// RollingForecast produces one-step forecasts for each element of actuals,
// updating f with the true value after each prediction.
func RollingForecast(f Forecaster, actuals []float64) []float64 {
	out := make([]float64, len(actuals))
	for i, a := range actuals {
		out[i] = f.OneStep()
		f.Update(a)
	}
	return out
}

// Persistence predicts the last observed value (naive-1) — the strongest
// trivial baseline for high-frequency resource usage.
type Persistence struct {
	last float64
	ok   bool
}

// Fit implements Forecaster.
func (p *Persistence) Fit(series []float64) error {
	if len(series) == 0 {
		return errors.New("naive: empty series")
	}
	p.last = series[len(series)-1]
	p.ok = true
	return nil
}

// OneStep implements Forecaster.
func (p *Persistence) OneStep() float64 { return p.last }

// Update implements Forecaster.
func (p *Persistence) Update(actual float64) { p.last = actual }

// Forecast implements Forecaster.
func (p *Persistence) Forecast(h int) []float64 { return repeat(p.last, h) }

// Drift extrapolates the average historical slope (the "drift method").
type Drift struct {
	last  float64
	slope float64
	n     int
	first float64
}

// Fit implements Forecaster.
func (d *Drift) Fit(series []float64) error {
	if len(series) < 2 {
		return errors.New("naive: drift needs at least 2 observations")
	}
	d.first = series[0]
	d.last = series[len(series)-1]
	d.n = len(series)
	d.slope = (d.last - d.first) / float64(len(series)-1)
	return nil
}

// OneStep implements Forecaster.
func (d *Drift) OneStep() float64 { return d.last + d.slope }

// Update implements Forecaster.
func (d *Drift) Update(actual float64) {
	d.n++
	d.last = actual
	d.slope = (actual - d.first) / float64(d.n-1)
}

// Forecast implements Forecaster.
func (d *Drift) Forecast(h int) []float64 {
	out := make([]float64, h)
	for i := range out {
		out[i] = d.last + d.slope*float64(i+1)
	}
	return out
}

// SeasonalNaive predicts the value one season ago.
type SeasonalNaive struct {
	Period int
	ring   []float64
	pos    int
}

// Fit implements Forecaster.
func (s *SeasonalNaive) Fit(series []float64) error {
	if s.Period < 1 {
		return fmt.Errorf("naive: invalid period %d", s.Period)
	}
	if len(series) < s.Period {
		return fmt.Errorf("naive: need at least one full period (%d), have %d", s.Period, len(series))
	}
	s.ring = append([]float64(nil), series[len(series)-s.Period:]...)
	s.pos = 0
	return nil
}

// OneStep implements Forecaster.
func (s *SeasonalNaive) OneStep() float64 { return s.ring[s.pos] }

// Update implements Forecaster.
func (s *SeasonalNaive) Update(actual float64) {
	s.ring[s.pos] = actual
	s.pos = (s.pos + 1) % s.Period
}

// Forecast implements Forecaster.
func (s *SeasonalNaive) Forecast(h int) []float64 {
	out := make([]float64, h)
	for i := range out {
		out[i] = s.ring[(s.pos+i)%s.Period]
	}
	return out
}

// MovingAverage predicts the mean of the last Window observations.
type MovingAverage struct {
	Window int
	buf    []float64
	sum    float64
	pos    int
	full   bool
}

// Fit implements Forecaster.
func (m *MovingAverage) Fit(series []float64) error {
	if m.Window < 1 {
		return fmt.Errorf("naive: invalid window %d", m.Window)
	}
	if len(series) == 0 {
		return errors.New("naive: empty series")
	}
	m.buf = make([]float64, m.Window)
	m.sum = 0
	m.pos = 0
	m.full = false
	start := len(series) - m.Window
	if start < 0 {
		start = 0
	}
	for _, v := range series[start:] {
		m.Update(v)
	}
	return nil
}

// OneStep implements Forecaster.
func (m *MovingAverage) OneStep() float64 {
	n := m.Window
	if !m.full {
		n = m.pos
	}
	if n == 0 {
		return 0
	}
	return m.sum / float64(n)
}

// Update implements Forecaster.
func (m *MovingAverage) Update(actual float64) {
	if m.full {
		m.sum -= m.buf[m.pos%m.Window]
	}
	m.buf[m.pos%m.Window] = actual
	m.sum += actual
	m.pos++
	if m.pos >= m.Window {
		m.full = true
		m.pos %= m.Window
	}
}

// Forecast implements Forecaster.
func (m *MovingAverage) Forecast(h int) []float64 { return repeat(m.OneStep(), h) }

// EWMA is simple exponential smoothing with factor Alpha ∈ (0,1].
type EWMA struct {
	Alpha float64
	level float64
	init  bool
}

// Fit implements Forecaster.
func (e *EWMA) Fit(series []float64) error {
	if e.Alpha <= 0 || e.Alpha > 1 {
		return fmt.Errorf("naive: invalid alpha %g", e.Alpha)
	}
	if len(series) == 0 {
		return errors.New("naive: empty series")
	}
	e.level = series[0]
	e.init = true
	for _, v := range series[1:] {
		e.Update(v)
	}
	return nil
}

// OneStep implements Forecaster.
func (e *EWMA) OneStep() float64 { return e.level }

// Update implements Forecaster.
func (e *EWMA) Update(actual float64) {
	if !e.init {
		e.level = actual
		e.init = true
		return
	}
	e.level = e.Alpha*actual + (1-e.Alpha)*e.level
}

// Forecast implements Forecaster.
func (e *EWMA) Forecast(h int) []float64 { return repeat(e.level, h) }

// Holt is Holt's linear-trend double exponential smoothing with level
// factor Alpha and trend factor Beta.
type Holt struct {
	Alpha, Beta  float64
	level, trend float64
	init         bool
}

// Fit implements Forecaster.
func (ho *Holt) Fit(series []float64) error {
	if ho.Alpha <= 0 || ho.Alpha > 1 || ho.Beta <= 0 || ho.Beta > 1 {
		return fmt.Errorf("naive: invalid smoothing factors α=%g β=%g", ho.Alpha, ho.Beta)
	}
	if len(series) < 2 {
		return errors.New("naive: Holt needs at least 2 observations")
	}
	ho.level = series[0]
	ho.trend = series[1] - series[0]
	ho.init = true
	for _, v := range series[1:] {
		ho.Update(v)
	}
	return nil
}

// OneStep implements Forecaster.
func (ho *Holt) OneStep() float64 { return ho.level + ho.trend }

// Update implements Forecaster.
func (ho *Holt) Update(actual float64) {
	if !ho.init {
		ho.level = actual
		ho.init = true
		return
	}
	prevLevel := ho.level
	ho.level = ho.Alpha*actual + (1-ho.Alpha)*(ho.level+ho.trend)
	ho.trend = ho.Beta*(ho.level-prevLevel) + (1-ho.Beta)*ho.trend
}

// Forecast implements Forecaster.
func (ho *Holt) Forecast(h int) []float64 {
	out := make([]float64, h)
	for i := range out {
		out[i] = ho.level + ho.trend*float64(i+1)
	}
	return out
}

func repeat(v float64, h int) []float64 {
	out := make([]float64, h)
	for i := range out {
		out[i] = v
	}
	return out
}
