package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisabledTracerIsNilSafe(t *testing.T) {
	tr := New(4)
	sp := tr.Start("root", String("k", "v"))
	if sp != nil {
		t.Fatalf("disabled tracer returned non-nil span")
	}
	// Every method must be a no-op on nil.
	child := sp.Start("child")
	child.SetAttr(Int("i", 1))
	child.End()
	sp.End()
	if d := sp.Duration(); d != 0 {
		t.Fatalf("nil span duration = %v", d)
	}
	if got := len(tr.Traces()); got != 0 {
		t.Fatalf("disabled tracer recorded %d traces", got)
	}
}

func TestSpanHierarchyAndRing(t *testing.T) {
	tr := New(2)
	tr.SetEnabled(true)
	for i := 0; i < 3; i++ {
		root := tr.Start("root", Int("iter", i))
		a := root.Start("stage.a")
		a.End()
		b := root.Start("stage.b")
		c := b.Start("inner")
		c.End()
		b.End()
		root.End()
	}
	traces := tr.Traces()
	if len(traces) != 2 {
		t.Fatalf("ring retained %d traces, want 2", len(traces))
	}
	if tr.Total() != 3 {
		t.Fatalf("total = %d, want 3", tr.Total())
	}
	// Most recent first.
	exp := traces[0].Export()
	if exp.Attrs["iter"] != int64(2) {
		t.Fatalf("most recent trace iter = %v, want 2", exp.Attrs["iter"])
	}
	if len(exp.Spans) != 2 || exp.Spans[1].Name != "stage.b" || len(exp.Spans[1].Spans) != 1 {
		t.Fatalf("unexpected tree: %+v", exp)
	}
	if exp.DurNS <= 0 {
		t.Fatalf("root duration not recorded: %d", exp.DurNS)
	}
}

func TestDoubleEndIsIdempotent(t *testing.T) {
	tr := New(4)
	tr.SetEnabled(true)
	sp := tr.Start("root")
	sp.End()
	d := sp.Duration()
	time.Sleep(time.Millisecond)
	sp.End()
	if sp.Duration() != d {
		t.Fatalf("second End changed duration")
	}
	if len(tr.Traces()) != 1 {
		t.Fatalf("double End recorded trace twice")
	}
}

func TestMaxSpansCapDropsChildren(t *testing.T) {
	tr := New(4)
	tr.SetMaxSpans(3) // root + 2 children
	tr.SetEnabled(true)
	root := tr.Start("root")
	kept := 0
	for i := 0; i < 10; i++ {
		if c := root.Start("child"); c != nil {
			c.End()
			kept++
		}
	}
	root.End()
	if kept != 2 {
		t.Fatalf("kept %d children, want 2", kept)
	}
	exp := tr.Traces()[0].Export()
	if exp.Attrs["dropped_spans"] != int64(8) {
		t.Fatalf("dropped_spans = %v, want 8", exp.Attrs["dropped_spans"])
	}
}

func TestWriteJSONLRoundTrip(t *testing.T) {
	tr := New(8)
	tr.SetEnabled(true)
	for i := 0; i < 3; i++ {
		sp := tr.Start("run", Int("i", i))
		sp.Start("step").End()
		sp.End()
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []SpanExport
	for sc.Scan() {
		var e SpanExport
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		lines = append(lines, e)
	}
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	// Oldest first.
	if lines[0].Attrs["i"] != float64(0) || lines[2].Attrs["i"] != float64(2) {
		t.Fatalf("JSONL not chronological: %v ... %v", lines[0].Attrs, lines[2].Attrs)
	}
}

func TestHandlerServesNDJSON(t *testing.T) {
	tr := New(8)
	tr.SetEnabled(true)
	for i := 0; i < 5; i++ {
		sp := tr.Start("req")
		sp.End()
	}
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?n=2", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	got := strings.Count(strings.TrimSpace(rec.Body.String()), "\n") + 1
	if got != 2 {
		t.Fatalf("handler returned %d traces, want 2", got)
	}
}

// TestConcurrentSpansAndExport exercises concurrent child creation,
// attribute writes, and export under the race detector.
func TestConcurrentSpansAndExport(t *testing.T) {
	tr := New(16)
	tr.SetEnabled(true)
	root := tr.Start("root")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c := root.Start("worker", Int("g", g))
				c.SetAttr(Int("i", i))
				c.End()
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			root.Export()
			_ = tr.WriteJSONL(io.Discard)
		}
	}()
	wg.Wait()
	<-done
	root.End()
	exp := tr.Traces()[0].Export()
	if len(exp.Spans) != 8*50 {
		t.Fatalf("got %d children, want %d", len(exp.Spans), 8*50)
	}
}

func TestResetClearsRing(t *testing.T) {
	tr := New(4)
	tr.SetEnabled(true)
	tr.Start("a").End()
	tr.Reset()
	if len(tr.Traces()) != 0 {
		t.Fatalf("Reset left traces behind")
	}
	tr.Start("b").End()
	if got := len(tr.Traces()); got != 1 {
		t.Fatalf("post-Reset trace count = %d", got)
	}
}
