package trace

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"time"
)

// SpanExport is the JSON form of one span (and, recursively, its
// children). One completed root trace serializes to one JSONL line.
type SpanExport struct {
	Name    string         `json:"name"`
	TraceID string         `json:"trace_id,omitempty"` // root spans only
	Start   time.Time      `json:"start"`
	DurNS   int64          `json:"dur_ns"`
	Attrs   map[string]any `json:"attrs,omitempty"`
	Spans   []SpanExport   `json:"spans,omitempty"`
}

// Export snapshots the span tree into its serializable form. Safe to
// call while children are still being added; an unended span exports
// with DurNS 0. Nil-safe (returns a zero SpanExport).
func (s *Span) Export() SpanExport {
	if s == nil {
		return SpanExport{}
	}
	s.mu.Lock()
	out := SpanExport{Name: s.name, Start: s.start, DurNS: int64(s.dur)}
	if s.root {
		out.TraceID = s.meta.id
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, c := range children {
		out.Spans = append(out.Spans, c.Export())
	}
	return out
}

// WriteJSONL writes the retained traces to w, one JSON object per line,
// oldest first (so appending exports keeps chronological order).
func (t *Tracer) WriteJSONL(w io.Writer) error {
	traces := t.Traces()
	enc := json.NewEncoder(w)
	for i := len(traces) - 1; i >= 0; i-- {
		if err := enc.Encode(traces[i].Export()); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the retained traces as JSON lines — mount it at
// /debug/traces on the debug sidecar. Query parameter n bounds the
// number of traces returned (most recent n).
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		traces := t.Traces()
		if v := r.URL.Query().Get("n"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n >= 0 && n < len(traces) {
				traces = traces[:n]
			}
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for i := len(traces) - 1; i >= 0; i-- {
			if err := enc.Encode(traces[i].Export()); err != nil {
				return
			}
		}
	})
}
