package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTraceIDsSequentialAndExported(t *testing.T) {
	tr := New(8)
	tr.SetEnabled(true)
	a := tr.Start("first")
	b := tr.Start("second")
	if a.TraceID() != "t0000000000000001" || b.TraceID() != "t0000000000000002" {
		t.Fatalf("trace IDs = %q, %q", a.TraceID(), b.TraceID())
	}
	child := a.Start("child")
	if child.TraceID() != a.TraceID() {
		t.Fatalf("child trace ID %q != root %q", child.TraceID(), a.TraceID())
	}
	child.End()
	a.End()
	b.End()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("journal lines = %d", len(lines))
	}
	var ex SpanExport
	if err := json.Unmarshal([]byte(lines[0]), &ex); err != nil {
		t.Fatal(err)
	}
	if ex.TraceID != "t0000000000000001" {
		t.Fatalf("exported root trace_id = %q", ex.TraceID)
	}
	if len(ex.Spans) != 1 || ex.Spans[0].TraceID != "" {
		t.Fatalf("child spans must not repeat the trace ID: %+v", ex.Spans)
	}
	var nilSpan *Span
	if nilSpan.TraceID() != "" || nilSpan.Kept() {
		t.Fatal("nil span must be inert")
	}
	nilSpan.Keep() // must not panic
}

func TestTailSamplingKeepsMarkedTraces(t *testing.T) {
	tr := New(64)
	tr.SetEnabled(true)
	tr.SetTailSampling(&TailSampleConfig{KeepEvery: -1}) // drop all boring traces

	for i := 0; i < 10; i++ {
		sp := tr.Start("boring")
		sp.End()
	}
	sp := tr.Start("failed")
	sp.Start("inner").Keep() // marking any span of the trace suffices
	sp.End()

	traces := tr.Traces()
	if len(traces) != 1 || traces[0].Name() != "failed" {
		t.Fatalf("retained = %v", traces)
	}
	st := tr.SampleStats()
	if st.KeptMarked != 1 || st.Dropped != 10 || st.KeptSlow != 0 || st.KeptSampled != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if tr.Total() != 1 {
		t.Fatalf("Total = %d, want retained count only", tr.Total())
	}
}

func TestTailSamplingKeepsSlowTraces(t *testing.T) {
	tr := New(64)
	tr.SetEnabled(true)
	tr.SetTailSampling(&TailSampleConfig{KeepEvery: -1, SlowThreshold: 5 * time.Millisecond})

	fast := tr.Start("fast")
	fast.End()
	slow := tr.Start("slow")
	time.Sleep(10 * time.Millisecond)
	slow.End()

	traces := tr.Traces()
	if len(traces) != 1 || traces[0].Name() != "slow" {
		t.Fatalf("retained = %v", traces)
	}
	st := tr.SampleStats()
	if st.KeptSlow != 1 || st.Dropped != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTailSamplingKeepEveryDeterministic(t *testing.T) {
	tr := New(64)
	tr.SetEnabled(true)
	tr.SetTailSampling(&TailSampleConfig{KeepEvery: 4})

	var kept []string
	for i := 0; i < 12; i++ {
		sp := tr.Start("req")
		id := sp.TraceID()
		sp.End()
		for _, r := range tr.Traces() {
			if r.TraceID() == id {
				kept = append(kept, id)
				break
			}
		}
	}
	// Boring traces 0, 4, 8 survive: deterministic 1-in-4 by counter.
	if len(kept) != 3 {
		t.Fatalf("kept %d of 12, want 3: %v", len(kept), kept)
	}
	st := tr.SampleStats()
	if st.KeptSampled != 3 || st.Dropped != 9 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTailSamplingDisabledKeepsEverything(t *testing.T) {
	tr := New(64)
	tr.SetEnabled(true)
	tr.SetTailSampling(&TailSampleConfig{KeepEvery: -1})
	tr.SetTailSampling(nil) // back to retain-everything
	for i := 0; i < 5; i++ {
		tr.Start("x").End()
	}
	if got := len(tr.Traces()); got != 5 {
		t.Fatalf("retained %d, want 5", got)
	}
	if st := tr.SampleStats(); st != (SampleStats{}) {
		t.Fatalf("stats must stay zero with sampling off: %+v", st)
	}
}

func TestTailSamplingKeepEveryOneKeepsAll(t *testing.T) {
	tr := New(64)
	tr.SetEnabled(true)
	tr.SetTailSampling(&TailSampleConfig{KeepEvery: 1})
	for i := 0; i < 4; i++ {
		tr.Start("x").End()
	}
	st := tr.SampleStats()
	if st.KeptSampled != 4 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}
