package trace

import "time"

// Tail-based sampling: the keep/drop decision happens when a root span
// ends, once its full duration and error markings are known — the
// opposite of head sampling, which must guess at request start and
// therefore throws away exactly the traces an operator wants (the slow
// and the broken ones). The policy here is the standard tail-sampler
// triad:
//
//   - a trace marked with Span.Keep (errors, degraded-mode responses,
//     breaker trips) is always retained;
//   - a trace at least SlowThreshold long is always retained;
//   - everything else — the boring fast successes — is retained
//     deterministically 1-in-KeepEvery, by a shared counter rather than
//     randomness, so replaying a workload reproduces the journal.
//
// Dropped traces still count in SampleStats, so the exported journal
// can state exactly what fraction of traffic it represents. Total()
// keeps its existing meaning: traces actually retained.

// TailSampleConfig is the keep/drop policy applied when a root span
// ends.
type TailSampleConfig struct {
	// KeepEvery retains 1 in KeepEvery unmarked, fast traces. Zero or
	// one keeps them all; negative keeps none (only marked/slow traces
	// survive).
	KeepEvery int
	// SlowThreshold retains every trace whose root duration is at least
	// this long. Zero disables the slow path.
	SlowThreshold time.Duration
}

// SampleStats counts the outcome of every tail-sampling decision since
// construction.
type SampleStats struct {
	KeptMarked  uint64 `json:"kept_marked"`  // retained via Span.Keep
	KeptSlow    uint64 `json:"kept_slow"`    // retained via SlowThreshold
	KeptSampled uint64 `json:"kept_sampled"` // retained via 1-in-KeepEvery
	Dropped     uint64 `json:"dropped"`
}

// SetTailSampling installs (or, with a nil pointer, removes) the
// tail-sampling policy. With no policy every completed trace is
// retained and SampleStats stays untouched — the pre-sampling
// behaviour.
func (t *Tracer) SetTailSampling(cfg *TailSampleConfig) {
	if cfg == nil {
		t.sampleCfg.Store(nil)
		return
	}
	c := *cfg
	t.sampleCfg.Store(&c)
}

// SampleStats returns the cumulative tail-sampling decision counts.
func (t *Tracer) SampleStats() SampleStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// Keep marks the whole trace this span belongs to as must-retain:
// tail sampling will never drop it. Call it on any span of the trace —
// typically where the error or degradation is discovered. Nil-safe.
func (s *Span) Keep() {
	if s == nil {
		return
	}
	s.meta.keep.Store(true)
}

// Kept reports whether the trace was marked with Keep. Nil returns
// false.
func (s *Span) Kept() bool {
	if s == nil {
		return false
	}
	return s.meta.keep.Load()
}

// TraceID returns the trace's process-unique identifier ("" for nil).
// IDs are sequence-based — t0000000000000001, t0000000000000002, … per
// tracer — so a fixed workload produces a fixed journal.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.meta.id
}

// decide applies the tail-sampling policy to a completed root span and
// updates stats. Caller holds t.mu.
func (t *Tracer) decide(root *Span, cfg *TailSampleConfig) bool {
	if root.meta.keep.Load() {
		t.stats.KeptMarked++
		return true
	}
	if cfg.SlowThreshold > 0 && root.dur >= cfg.SlowThreshold {
		t.stats.KeptSlow++
		return true
	}
	switch {
	case cfg.KeepEvery < 0:
		t.stats.Dropped++
		return false
	case cfg.KeepEvery <= 1:
		t.stats.KeptSampled++
		return true
	default:
		n := t.sampleSeq
		t.sampleSeq++
		if n%uint64(cfg.KeepEvery) == 0 {
			t.stats.KeptSampled++
			return true
		}
		t.stats.Dropped++
		return false
	}
}
