// Package trace is a stdlib-only hierarchical span tracer for the hot
// paths of the repo: Algorithm 1's data-prep stages, per-epoch and
// per-batch training work, and individual serving requests. It answers
// the question the end-to-end timers cannot — *where inside the pipeline
// the time goes* — which the paper's efficiency claim (Table 3 / §V-E)
// needs before any optimisation PR can claim a win.
//
// Design constraints, in order:
//
//  1. Near-zero cost when disabled (the production serving default):
//     starting a span is one atomic load returning nil, and every Span
//     method is nil-safe, so instrumented code needs no conditionals.
//  2. No dependencies: spans carry monotonic wall time (time.Time's
//     monotonic reading), a name, and a flat attribute list.
//  3. Bounded memory: completed root traces land in a fixed-size ring,
//     and each trace caps its span count so a pathological loop (say,
//     per-batch spans of a week-long training run) degrades to dropped
//     spans, never to unbounded growth.
//
// Usage:
//
//	tr := trace.Default()
//	tr.SetEnabled(true)
//	sp := tr.Start("predictor.fit", trace.String("scenario", "Mul-Exp"))
//	child := sp.Start("dataprep.clean")
//	... work ...
//	child.End()
//	sp.End() // completed root traces become visible in tr.Traces()
package trace

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span. Values should be plain
// scalars (string, int64, float64, bool) so JSONL export stays flat.
type Attr struct {
	Key   string
	Value any
}

// String constructs a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int constructs an integer attribute.
func Int(key string, value int) Attr { return Attr{Key: key, Value: int64(value)} }

// Int64 constructs an integer attribute.
func Int64(key string, value int64) Attr { return Attr{Key: key, Value: value} }

// Float constructs a float attribute.
func Float(key string, value float64) Attr { return Attr{Key: key, Value: value} }

// Bool constructs a boolean attribute.
func Bool(key string, value bool) Attr { return Attr{Key: key, Value: value} }

// traceMeta is the per-trace bookkeeping shared by every span of one
// root: total span count (for the per-trace cap) and how many span
// starts were refused once the cap was hit.
type traceMeta struct {
	tracer  *Tracer
	id      string // sequence-based trace ID, fixed at root Start
	spans   atomic.Int64
	dropped atomic.Int64
	keep    atomic.Bool // marked must-retain for tail sampling
}

// Span is one timed region of a trace. A nil *Span is a valid no-op:
// every method checks the receiver, so disabled tracing costs only the
// nil checks at the call sites.
type Span struct {
	meta *traceMeta
	name string
	root bool // set for the first span of a trace; End publishes it

	start time.Time // carries a monotonic reading

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// Tracer collects completed root spans into a bounded ring. The zero
// value is unusable; construct with New or use Default.
type Tracer struct {
	enabled  atomic.Bool
	maxSpans int64 // per-trace span cap

	seq       atomic.Uint64                    // trace ID sequence
	sampleCfg atomic.Pointer[TailSampleConfig] // nil → retain everything

	mu        sync.Mutex
	ring      []*Span // completed root spans, oldest overwritten first
	next      int
	total     uint64 // root traces retained (post-sampling)
	sampleSeq uint64 // boring-trace counter for 1-in-KeepEvery
	stats     SampleStats
}

// DefaultRingSize is the number of completed traces New retains when
// given a non-positive capacity.
const DefaultRingSize = 64

// DefaultMaxSpans caps the spans of a single trace (root included).
const DefaultMaxSpans = 4096

// New returns a disabled tracer retaining the last ringSize completed
// traces (DefaultRingSize when ringSize <= 0).
func New(ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	return &Tracer{ring: make([]*Span, ringSize), maxSpans: DefaultMaxSpans}
}

// defaultTracer is the process-wide tracer, disabled until a command
// opts in (rptcnd -trace, experiments -trace-out, ...).
var defaultTracer = New(DefaultRingSize)

// Default returns the process-wide tracer.
func Default() *Tracer { return defaultTracer }

// SetEnabled turns span collection on or off. Spans of traces already
// in flight keep recording; only new root spans observe the switch.
func (t *Tracer) SetEnabled(on bool) { t.enabled.Store(on) }

// Enabled reports whether new root spans are being collected.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// SetMaxSpans replaces the per-trace span cap (ignored when n < 1).
// Call before tracing starts; in-flight traces keep their old cap.
func (t *Tracer) SetMaxSpans(n int) {
	if n >= 1 {
		t.maxSpans = int64(n)
	}
}

// Start begins a new root span, or returns nil when the tracer is
// disabled — the single atomic load that makes disabled tracing free.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if !t.enabled.Load() {
		return nil
	}
	meta := &traceMeta{tracer: t, id: fmt.Sprintf("t%016x", t.seq.Add(1))}
	meta.spans.Store(1)
	return &Span{meta: meta, name: name, root: true, start: time.Now(), attrs: attrs}
}

// Start begins a child span under s. Nil-safe: a nil receiver (disabled
// tracer, or a span dropped by the per-trace cap) returns nil.
func (s *Span) Start(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	if s.meta.spans.Add(1) > s.meta.tracer.maxSpans {
		s.meta.dropped.Add(1)
		return nil
	}
	child := &Span{meta: s.meta, name: name, start: time.Now(), attrs: attrs}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
	return child
}

// SetAttr appends attributes to the span. Nil-safe.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// End stops the span's clock. Ending a root span publishes the whole
// trace into the tracer's ring; double End is a no-op. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	if s.root {
		if d := s.meta.dropped.Load(); d > 0 {
			s.attrs = append(s.attrs, Int64("dropped_spans", d))
		}
	}
	s.mu.Unlock()
	if s.root {
		s.meta.tracer.record(s)
	}
}

// Duration returns the measured duration (0 until End, 0 for nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// Name returns the span name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// record applies the tail-sampling policy (if any) to a completed root
// trace and stores survivors in the ring.
func (t *Tracer) record(root *Span) {
	cfg := t.sampleCfg.Load()
	t.mu.Lock()
	if cfg != nil && !t.decide(root, cfg) {
		t.mu.Unlock()
		return
	}
	t.ring[t.next] = root
	t.next = (t.next + 1) % len(t.ring)
	t.total++
	t.mu.Unlock()
}

// Traces returns the completed root spans currently retained, most
// recent first.
func (t *Tracer) Traces() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, 0, len(t.ring))
	for i := 0; i < len(t.ring); i++ {
		idx := (t.next - 1 - i + 2*len(t.ring)) % len(t.ring)
		if t.ring[idx] != nil {
			out = append(out, t.ring[idx])
		}
	}
	return out
}

// Total returns how many root traces have completed since construction
// (including any the ring has since evicted).
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Reset drops all retained traces (the enabled flag is untouched).
func (t *Tracer) Reset() {
	t.mu.Lock()
	for i := range t.ring {
		t.ring[i] = nil
	}
	t.next = 0
	t.mu.Unlock()
}
