package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// buildInfoRegistered guards against double registration per registry.
var buildInfoRegistered sync.Map // *Registry → struct{}

// RegisterBuildInfo exports a constant rptcn_build_info gauge (value 1)
// whose labels identify the running binary: module version, VCS
// revision, dirty flag, and Go toolchain version, read from
// runtime/debug.ReadBuildInfo. Fields the build did not stamp come out
// as "unknown", so the label set is stable across build modes (module
// builds, `go test`, stripped binaries). Repeated calls for the same
// registry are no-ops.
func RegisterBuildInfo(r *Registry) {
	if _, loaded := buildInfoRegistered.LoadOrStore(r, struct{}{}); loaded {
		return
	}
	version, revision, modified := "unknown", "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				if s.Value != "" {
					revision = s.Value
				}
			case "vcs.modified":
				modified = s.Value
			}
		}
	}
	r.Gauge("rptcn_build_info",
		"Build identity of the running binary; constant 1.",
		L("version", version),
		L("revision", revision),
		L("modified", modified),
		L("go_version", runtime.Version()),
	).Set(1)
}
