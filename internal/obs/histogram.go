package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Histogram counts observations into cumulative buckets and tracks count
// and sum, Prometheus-style. Quantiles are estimated from the bucket
// distribution by linear interpolation, which is exact enough for latency
// reporting (error bounded by bucket width).
//
// Observe is guarded by a mutex rather than per-bucket atomics: the hot
// paths here observe once per HTTP request or training epoch, where a
// single uncontended lock is ~20 ns and keeps count/sum/buckets mutually
// consistent for quantile math.
type Histogram struct {
	mu     sync.Mutex
	uppers []float64 // ascending bucket upper bounds, +Inf excluded
	counts []uint64  // per-bucket (non-cumulative) counts, len(uppers)+1
	count  uint64
	sum    float64
	min    float64
	max    float64

	// exemplars holds the most recent exemplar per bucket (+Inf last),
	// published with lock-free atomic stores so exemplar capture can
	// never block the recording path (see ObserveExemplar).
	exemplars []atomic.Pointer[Exemplar]
}

func newHistogram(uppers []float64) *Histogram {
	return &Histogram{
		uppers:    uppers,
		counts:    make([]uint64, len(uppers)+1),
		min:       math.Inf(1),
		max:       math.Inf(-1),
		exemplars: make([]atomic.Pointer[Exemplar], len(uppers)+1),
	}
}

// NewHistogram returns a standalone histogram (not attached to any
// registry) with the given bucket upper bounds. Useful for local
// measurement loops like the experiments timing study.
func NewHistogram(buckets []float64) *Histogram {
	return newHistogram(normalizeBuckets(buckets))
}

// normalizeBuckets sorts, dedups, and strips non-finite bounds. A nil or
// empty slice falls back to DefBuckets.
func normalizeBuckets(buckets []float64) []float64 {
	if len(buckets) == 0 {
		return DefBuckets()
	}
	bs := make([]float64, 0, len(buckets))
	for _, b := range buckets {
		if !math.IsInf(b, 0) && !math.IsNaN(b) {
			bs = append(bs, b)
		}
	}
	sort.Float64s(bs)
	out := bs[:0]
	for i, b := range bs {
		if i == 0 || b != bs[i-1] {
			out = append(out, b)
		}
	}
	return out
}

// DefBuckets returns the default latency buckets in seconds (5 ms … ~100 s,
// roughly Prometheus' defaults shifted for model inference).
func DefBuckets() []float64 {
	return []float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}
}

// LinearBuckets returns n bucket bounds starting at start, spaced by width.
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns n bucket bounds starting at start, each
// factor times the previous. start and factor must be positive,
// factor > 1.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 {
		panic(fmt.Sprintf("obs: invalid exponential buckets start=%g factor=%g", start, factor))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.observeIdx(sort.SearchFloat64s(h.uppers, v), v)
}

func (h *Histogram) observeIdx(idx int, v float64) {
	h.mu.Lock()
	h.counts[idx]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Exemplar links one recorded observation to the trace and entity that
// produced it — the breadcrumb from a p99 bucket straight to a span in
// /debug/traces.
type Exemplar struct {
	Value   float64 `json:"value"`
	TraceID string  `json:"trace_id,omitempty"`
	Entity  string  `json:"entity,omitempty"`
}

// BucketExemplar pairs a bucket upper bound (rendered, so "+Inf" stays
// JSON-safe) with its most recent exemplar.
type BucketExemplar struct {
	Le       string   `json:"le"`
	Exemplar Exemplar `json:"exemplar"`
}

// ObserveExemplar records one value and attaches an exemplar to its
// bucket. The exemplar publish is a single atomic pointer store — no
// lock, no retry loop — so exemplar capture can never block or slow the
// recording path, and readers (Exemplars, /debug/fleet) never block a
// writer either.
func (h *Histogram) ObserveExemplar(v float64, traceID, entity string) {
	idx := sort.SearchFloat64s(h.uppers, v)
	h.exemplars[idx].Store(&Exemplar{Value: v, TraceID: traceID, Entity: entity})
	h.observeIdx(idx, v)
}

// Exemplars returns the most recent exemplar of every bucket that has
// one, in ascending bucket order. Lock-free.
func (h *Histogram) Exemplars() []BucketExemplar {
	var out []BucketExemplar
	for i := range h.exemplars {
		ex := h.exemplars[i].Load()
		if ex == nil {
			continue
		}
		upper := "+Inf"
		if i < len(h.uppers) {
			upper = formatFloat(h.uppers[i])
		}
		out = append(out, BucketExemplar{Le: upper, Exemplar: *ex})
	}
	return out
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the mean observation, or NaN when empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket
// distribution by linear interpolation inside the containing bucket,
// clamped to the observed min/max so a wide terminal bucket can't report
// a latency larger than anything seen. Returns NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return math.NaN()
	}
	rank := q * float64(h.count)
	cum := 0.0
	for i, c := range h.counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		// The rank falls inside bucket i: [lower, upper).
		lower := math.Inf(-1)
		if i > 0 {
			lower = h.uppers[i-1]
		}
		upper := math.Inf(1)
		if i < len(h.uppers) {
			upper = h.uppers[i]
		}
		// Clamp open-ended bounds to observed extremes.
		if math.IsInf(lower, -1) {
			lower = h.min
		}
		if math.IsInf(upper, 1) {
			upper = h.max
		}
		if upper <= lower {
			return clamp(upper, h.min, h.max)
		}
		frac := (rank - prev) / float64(c)
		return clamp(lower+frac*(upper-lower), h.min, h.max)
	}
	return h.max
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// write emits the Prometheus exposition lines: cumulative buckets with a
// le label, then +Inf, sum, and count. The series label block is spliced
// with the le label per the text format.
func (h *Histogram) write(w io.Writer, name, lbl string) {
	h.mu.Lock()
	counts := make([]uint64, len(h.counts))
	copy(counts, h.counts)
	count, sum := h.count, h.sum
	h.mu.Unlock()

	cum := uint64(0)
	for i, upper := range h.uppers {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, spliceLabel(lbl, "le", formatFloat(upper)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, spliceLabel(lbl, "le", "+Inf"), count)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, lbl, formatFloat(sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, lbl, count)
}

// spliceLabel appends key="value" into an existing canonical label block.
func spliceLabel(lbl, key, value string) string {
	kv := key + `="` + value + `"`
	if lbl == "" {
		return "{" + kv + "}"
	}
	return lbl[:len(lbl)-1] + "," + kv + "}"
}

func (h *Histogram) snapshotValue() SnapshotValue {
	h.mu.Lock()
	defer h.mu.Unlock()
	bs := make([]BucketCount, 0, len(h.uppers)+1)
	cum := uint64(0)
	for i, upper := range h.uppers {
		cum += h.counts[i]
		bs = append(bs, BucketCount{Upper: upper, Count: cum})
	}
	bs = append(bs, BucketCount{Upper: math.Inf(1), Count: h.count})
	return SnapshotValue{Count: h.count, Sum: h.sum, Buckets: bs}
}
