package obs

import (
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

func TestExemplarAttachesToBucket(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	h.ObserveExemplar(0.005, "trace-a", "m_1")
	h.ObserveExemplar(0.5, "trace-b", "m_2")
	h.ObserveExemplar(0.05, "trace-c", "m_3")
	h.ObserveExemplar(0.07, "trace-d", "m_4") // replaces trace-c in the 0.1 bucket
	h.ObserveExemplar(5, "trace-e", "m_5")    // +Inf bucket

	ex := h.Exemplars()
	if len(ex) != 4 {
		t.Fatalf("exemplars = %+v, want 4 buckets", ex)
	}
	want := []struct {
		le, trace, entity string
		value             float64
	}{
		{"0.01", "trace-a", "m_1", 0.005},
		{"0.1", "trace-d", "m_4", 0.07},
		{"1", "trace-b", "m_2", 0.5},
		{"+Inf", "trace-e", "m_5", 5},
	}
	for i, w := range want {
		got := ex[i]
		if got.Le != w.le || got.Exemplar.TraceID != w.trace || got.Exemplar.Entity != w.entity || got.Exemplar.Value != w.value {
			t.Fatalf("exemplar[%d] = %+v, want %+v", i, got, w)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5 (exemplar observations count)", h.Count())
	}
}

func TestExemplarEmptyHistogram(t *testing.T) {
	h := NewHistogram(nil)
	if ex := h.Exemplars(); len(ex) != 0 {
		t.Fatalf("empty histogram has exemplars: %+v", ex)
	}
}

// TestExemplarCaptureNeverBlocks pins the lock-freedom contract: the
// exemplar publish must become visible to readers even while the
// histogram mutex is held by someone else. If the capture path ever
// grows a lock dependency, the exemplar will not appear and this test
// times out.
func TestExemplarCaptureNeverBlocks(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.mu.Lock() // simulate a stalled scrape holding the recording lock
	defer h.mu.Unlock()

	go h.ObserveExemplar(0.5, "trace-x", "m_9")

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, ex := range h.Exemplars() { // reader must be lock-free too
			if ex.Exemplar.TraceID == "trace-x" {
				return
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("exemplar not visible while histogram mutex held: capture path blocks")
}

// TestScrapeVsRecordRace hammers WriteTo/Snapshot/Exemplars against
// concurrent Observe/ObserveExemplar writers. Run under -race; the
// assertion at the end only checks nothing was lost.
func TestScrapeVsRecordRace(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	h := r.Histogram("rptcn_race_seconds", "Race test.", []float64{0.001, 0.01, 0.1})
	c := r.Counter("rptcn_race_total", "Race test.")

	const writers, perWriter = 4, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				v := float64(i%97) / 1000
				if i%3 == 0 {
					h.ObserveExemplar(v, fmt.Sprintf("t%d-%d", w, i), "m_1")
				} else {
					h.Observe(v)
				}
				c.Inc()
			}
		}(w)
	}

	stop := make(chan struct{})
	var rg sync.WaitGroup
	for s := 0; s < 2; s++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if _, err := r.WriteTo(io.Discard); err != nil {
						t.Errorf("WriteTo: %v", err)
						return
					}
					_ = r.Snapshot()
					_ = h.Exemplars()
				}
			}
		}()
	}

	wg.Wait()
	close(stop)
	rg.Wait()
	if h.Count() != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", h.Count(), writers*perWriter)
	}
	if c.Value() != writers*perWriter {
		t.Fatalf("counter = %v, want %d", c.Value(), writers*perWriter)
	}
	if probs := r.Lint(); len(probs) != 0 {
		t.Fatalf("exposition dirty after race run: %v", probs)
	}
}
