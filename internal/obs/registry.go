// Package obs is the repository's stdlib-only observability layer: a
// concurrency-safe metrics registry (counters, gauges, histograms) with
// Prometheus text-format exposition and an expvar bridge, plus structured
// logging built on log/slog. Every subsystem — training, serving,
// experiments — reports through it, so operational questions ("how slow
// are forecasts right now, and why") have one answer surface:
// GET /metrics on the serving path.
//
// The registry deliberately implements only what the repo needs and
// nothing that would require a dependency: metric families keyed by name,
// per-family label sets, monotone counters, gauges, and bucketed
// histograms with quantile estimation.
package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value metric dimension. Families sort and serialize
// label sets deterministically, so {path,code} and {code,path} address
// the same series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// kind discriminates metric families for exposition.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is any concrete metric instance living inside a family.
type series interface {
	// write emits the exposition lines for this series. name is the
	// family name and lbl the pre-rendered label block (may be empty).
	write(w io.Writer, name, lbl string)
	// snapshotValue returns the point-in-time value for Snapshot.
	snapshotValue() SnapshotValue
}

// family groups all label variants of one metric name.
type family struct {
	name    string
	help    string
	typ     kind
	buckets []float64 // histogram families share bucket layout

	mu     sync.Mutex
	series map[string]series // keyed by canonical label string
	keys   []string          // insertion order for stable exposition
}

// Registry is a concurrency-safe collection of metric families. The zero
// value is not usable; construct with NewRegistry or use Default.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []string // registration order for stable exposition

	// collectors run before every WriteTo/Snapshot to refresh gauges
	// whose source of truth lives outside the registry (see
	// RegisterCollector and RegisterRuntimeMetrics in runtime.go).
	collectorMu sync.Mutex
	collectors  []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry is the process-wide registry used by Default.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. Commands and long-lived
// servers report here; tests should construct their own via NewRegistry.
func Default() *Registry { return defaultRegistry }

// family returns the family for name, creating it with the given type on
// first use. Re-registering a name with a different type panics: that is
// always a programming error, and silently merging would corrupt the
// exposition output.
func (r *Registry) family(name, help string, typ kind, buckets []float64) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.families[name]; f == nil {
			f = &family{name: name, help: help, typ: typ, buckets: buckets, series: make(map[string]series)}
			r.families[name] = f
			r.order = append(r.order, name)
		}
		r.mu.Unlock()
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	return f
}

// get returns the series for the given label set, creating it via mk.
func (f *family) get(labels []Label, mk func() series) series {
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[key]
	if s == nil {
		s = mk()
		f.series[key] = s
		f.keys = append(f.keys, key)
	}
	return s
}

// labelKey canonicalizes a label set: sorted by key, rendered as the
// Prometheus label block ({k="v",...}), empty string for no labels.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the Prometheus text-format label escapes.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Counter is a monotonically increasing value. Safe for concurrent use.
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v, which must be non-negative; negative deltas are dropped to
// preserve monotonicity.
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	addFloat(&c.bits, v)
}

// Value returns the current total.
func (c *Counter) Value() float64 { return loadFloat(&c.bits) }

func (c *Counter) write(w io.Writer, name, lbl string) {
	fmt.Fprintf(w, "%s%s %s\n", name, lbl, formatFloat(c.Value()))
}

func (c *Counter) snapshotValue() SnapshotValue { return SnapshotValue{Value: c.Value()} }

// Gauge is a value that can go up and down. Safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Add adds v (may be negative).
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return loadFloat(&g.bits) }

func (g *Gauge) write(w io.Writer, name, lbl string) {
	fmt.Fprintf(w, "%s%s %s\n", name, lbl, formatFloat(g.Value()))
}

func (g *Gauge) snapshotValue() SnapshotValue { return SnapshotValue{Value: g.Value()} }

// Counter returns the counter series for name and labels, registering the
// family on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.family(name, help, kindCounter, nil)
	return f.get(labels, func() series { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge series for name and labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.family(name, help, kindGauge, nil)
	return f.get(labels, func() series { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram series for name and labels. The first
// registration of a name fixes its bucket layout; later calls may pass
// nil buckets to reuse it.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	f := r.family(name, help, kindHistogram, normalizeBuckets(buckets))
	return f.get(labels, func() series { return newHistogram(f.buckets) }).(*Histogram)
}

// SnapshotValue is the point-in-time state of one series. Histograms fill
// Count/Sum/Buckets; counters and gauges fill Value.
type SnapshotValue struct {
	Value   float64
	Count   uint64
	Sum     float64
	Buckets []BucketCount
}

// BucketCount is one cumulative histogram bucket: observations ≤ Upper.
type BucketCount struct {
	Upper float64
	Count uint64
}

// Snapshot is the state of one series at one instant.
type Snapshot struct {
	Name   string
	Type   string
	Labels string // canonical label block, "" when unlabeled
	SnapshotValue
}

// Snapshot returns every series in the registry, ordered by family
// registration then series creation. It is safe to call concurrently with
// metric updates; each series is read atomically but the set as a whole
// is not a consistent cut.
func (r *Registry) Snapshot() []Snapshot {
	r.collect()
	r.mu.RLock()
	names := make([]string, len(r.order))
	copy(names, r.order)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()

	var out []Snapshot
	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, len(f.keys))
		copy(keys, f.keys)
		ss := make([]series, 0, len(keys))
		for _, k := range keys {
			ss = append(ss, f.series[k])
		}
		typ := f.typ.String()
		f.mu.Unlock()
		for i, s := range ss {
			out = append(out, Snapshot{Name: f.name, Type: typ, Labels: keys[i], SnapshotValue: s.snapshotValue()})
		}
	}
	return out
}

// WriteTo renders the registry in the Prometheus text exposition format
// (version 0.0.4). It implements io.WriterTo.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.collect()
	cw := &countingWriter{w: w}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.order))
	for _, n := range r.order {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()
	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, len(f.keys))
		copy(keys, f.keys)
		ss := make([]series, 0, len(keys))
		for _, k := range keys {
			ss = append(ss, f.series[k])
		}
		f.mu.Unlock()
		if len(ss) == 0 {
			continue
		}
		if f.help != "" {
			fmt.Fprintf(cw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(cw, "# TYPE %s %s\n", f.name, f.typ)
		for i, s := range ss {
			s.write(cw, f.name, keys[i])
		}
		if cw.err != nil {
			return cw.n, cw.err
		}
	}
	return cw.n, cw.err
}

func escapeHelp(h string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(h)
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	if cw.err != nil {
		return 0, cw.err
	}
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	cw.err = err
	return n, err
}

// expvarOnce guards the process-wide expvar name, which panics on
// duplicate registration.
var expvarOnce sync.Once

// PublishExpvar exposes the registry under the given expvar name (on the
// standard /debug/vars page). Repeated calls are no-ops: expvar names are
// process-global, so only the first registry wins.
func (r *Registry) PublishExpvar(name string) {
	expvarOnce.Do(func() {
		expvar.Publish(name, expvar.Func(func() any {
			snaps := r.Snapshot()
			m := make(map[string]any, len(snaps))
			for _, s := range snaps {
				key := s.Name + s.Labels
				if s.Type == "histogram" {
					m[key] = map[string]any{"count": s.Count, "sum": s.Sum}
				} else {
					m[key] = s.Value
				}
			}
			return m
		}))
	})
}

// float helpers: atomics over float64 bit patterns.

func floatBits(v float64) uint64 { return math.Float64bits(v) }

func loadFloat(a *atomic.Uint64) float64 { return math.Float64frombits(a.Load()) }

func addFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if a.CompareAndSwap(old, next) {
			return
		}
	}
}

// formatFloat renders metric values the way Prometheus expects: integers
// without a decimal point, everything else in shortest form.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
