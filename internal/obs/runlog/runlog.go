// Package runlog is the run-artifact journal: one append-only JSONL
// event stream per training run, written under a run directory, so a
// run leaves a persistent, machine-readable record beyond stdout —
// TensorBoard-like scalars without a dependency.
//
// Event stream shape (one JSON object per line):
//
//	{"t":"...","type":"config","data":{"scenario":"Mul-Exp","window":32,...}}
//	{"t":"...","type":"epoch","data":{"epoch":0,"train_loss":...,"valid_loss":...,...}}
//	{"t":"...","type":"early_stop","data":{"epoch":17,"best_epoch":7,...}}
//	{"t":"...","type":"profile","data":{"layers":[{"layer":"tcn[0]","fwd_ns":...},...]}}
//	{"t":"...","type":"final","data":{"test_mse":...,"test_mae":...}}
//
// Producers: train.NewJournalHook streams epoch events; commands add
// config/profile/final events around it. Consumer: cmd/runlog (and
// Summarize here) renders a run back into text tables.
package runlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Event is one journal line.
type Event struct {
	Time time.Time      `json:"t"`
	Type string         `json:"type"`
	Data map[string]any `json:"data,omitempty"`
}

// Well-known event types.
const (
	TypeConfig    = "config"
	TypeEpoch     = "epoch"
	TypeEarlyStop = "early_stop"
	TypeProfile   = "profile"
	TypeFinal     = "final"
	// TypeGuard records divergence-guard interventions (skipped batches,
	// best-weight rollbacks); TypeResume records a checkpoint resume.
	TypeGuard  = "guard"
	TypeResume = "resume"
	// TypeDrift records online quality events from internal/quality:
	// mutation-point detections (kind=mutation) and drift-detector state
	// transitions (kind=level). TypeSLO records SLO rule transitions.
	TypeDrift = "drift"
	TypeSLO   = "slo"
	// TypeAdapt records online-adaptation lifecycle transitions from
	// internal/adapt: retrain starts/failures, shadow verdicts,
	// promotions, rollbacks, and alarms (kind=...).
	TypeAdapt = "adapt"
)

// Run is an open journal. Log is safe for concurrent use; write errors
// are sticky and reported by Err/Close rather than per call, so hooks
// can log unconditionally.
type Run struct {
	mu   sync.Mutex
	w    io.Writer
	c    io.Closer
	path string
	err  error
}

// New wraps an arbitrary writer as a Run (tests, in-memory use).
func New(w io.Writer) *Run {
	r := &Run{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		r.c = c
	}
	return r
}

// Create opens a new journal file under dir (created if missing), named
// run-<UTC timestamp>.jsonl; on collision a numeric suffix is added so
// concurrent runs never share a file.
func Create(dir string) (*Run, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runlog: %w", err)
	}
	base := "run-" + time.Now().UTC().Format("20060102-150405")
	for i := 0; ; i++ {
		name := base
		if i > 0 {
			name = fmt.Sprintf("%s-%d", base, i)
		}
		path := filepath.Join(dir, name+".jsonl")
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if os.IsExist(err) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("runlog: %w", err)
		}
		return &Run{w: bufio.NewWriter(f), c: f, path: path}, nil
	}
}

// Path returns the journal file path ("" for in-memory runs).
func (r *Run) Path() string { return r.path }

// Log appends one event. Nil-safe, so callers can journal
// unconditionally and pass a nil *Run when journaling is off.
func (r *Run) Log(typ string, data map[string]any) {
	if r == nil {
		return
	}
	ev := Event{Time: time.Now().UTC(), Type: typ, Data: data}
	line, err := json.Marshal(ev)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	if err != nil {
		r.err = err
		return
	}
	if _, err := r.w.Write(append(line, '\n')); err != nil {
		r.err = err
	}
}

// Err returns the first write error, if any.
func (r *Run) Err() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Close flushes and closes the journal. Nil-safe.
func (r *Run) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if bw, ok := r.w.(*bufio.Writer); ok {
		if err := bw.Flush(); err != nil && r.err == nil {
			r.err = err
		}
	}
	if r.c != nil {
		if err := r.c.Close(); err != nil && r.err == nil {
			r.err = err
		}
		r.c = nil
	}
	return r.err
}

// Read parses a journal stream. Unknown event types are preserved;
// malformed lines abort with an error naming the line.
func Read(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	var out []Event
	for i := 1; sc.Scan(); i++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("runlog: line %d: %w", i, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("runlog: %w", err)
	}
	return out, nil
}

// ReadFile reads a journal file.
func ReadFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("runlog: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// Latest returns the newest *.jsonl journal in dir, by modification
// time (file names alone cannot order same-second collision suffixes).
func Latest(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		return "", fmt.Errorf("runlog: %w", err)
	}
	if len(matches) == 0 {
		return "", fmt.Errorf("runlog: no journals in %s", dir)
	}
	sort.Strings(matches)
	best, bestMod := "", time.Time{}
	for _, m := range matches {
		info, err := os.Stat(m)
		if err != nil {
			continue
		}
		if best == "" || info.ModTime().After(bestMod) {
			best, bestMod = m, info.ModTime()
		}
	}
	if best == "" {
		return "", fmt.Errorf("runlog: no readable journals in %s", dir)
	}
	return best, nil
}

// Summarize renders a journal as text tables: the run config, the
// per-epoch scalar table, the per-layer profile (when present), and the
// final metrics.
func Summarize(events []Event) string {
	var b strings.Builder
	for _, ev := range events {
		if ev.Type == TypeConfig {
			b.WriteString("config: ")
			b.WriteString(flatKV(ev.Data))
			b.WriteString("\n")
		}
	}

	var epochs []Event
	for _, ev := range events {
		if ev.Type == TypeEpoch {
			epochs = append(epochs, ev)
		}
	}
	if len(epochs) > 0 {
		fmt.Fprintf(&b, "\n%5s %12s %12s %12s %10s %10s %5s\n",
			"epoch", "train_loss", "valid_loss", "grad_norm", "lr", "dur", "best")
		for _, ev := range epochs {
			best := ""
			if improved, _ := ev.Data["improved"].(bool); improved {
				best = "*"
			}
			fmt.Fprintf(&b, "%5v %12s %12s %12s %10s %10s %5s\n",
				num(ev.Data["epoch"]),
				fmtFloat(ev.Data["train_loss"]), fmtFloat(ev.Data["valid_loss"]),
				fmtFloat(ev.Data["grad_norm"]), fmtFloat(ev.Data["lr"]),
				fmtDur(ev.Data["dur_ns"]), best)
		}
	}

	for _, ev := range events {
		switch ev.Type {
		case TypeEarlyStop:
			fmt.Fprintf(&b, "\nearly stop at epoch %v (best epoch %v, best valid loss %s)\n",
				num(ev.Data["epoch"]), num(ev.Data["best_epoch"]), fmtFloat(ev.Data["best_valid_loss"]))
		case TypeProfile:
			b.WriteString("\nper-layer profile:\n")
			b.WriteString(profileTable(ev.Data))
		case TypeDrift:
			b.WriteString("drift: ")
			b.WriteString(flatKV(ev.Data))
			b.WriteString("\n")
		case TypeSLO:
			b.WriteString("slo: ")
			b.WriteString(flatKV(ev.Data))
			b.WriteString("\n")
		case TypeAdapt:
			b.WriteString("adapt: ")
			b.WriteString(flatKV(ev.Data))
			b.WriteString("\n")
		case TypeFinal:
			b.WriteString("\nfinal: ")
			b.WriteString(flatKV(ev.Data))
			b.WriteString("\n")
		}
	}
	return b.String()
}

// profileTable renders a profile event's {"layers": [...]} payload.
func profileTable(data map[string]any) string {
	layers, _ := data["layers"].([]any)
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %9s %12s %12s\n", "layer", "calls", "fwd total", "bwd total")
	for _, l := range layers {
		m, ok := l.(map[string]any)
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-24s %9v %12s %12s\n",
			m["layer"], num(m["fwd_calls"]), fmtDur(m["fwd_ns"]), fmtDur(m["bwd_ns"]))
	}
	return b.String()
}

// flatKV renders a data map as sorted key=value pairs.
func flatKV(data map[string]any) string {
	keys := make([]string, 0, len(data))
	for k := range data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%v", k, data[k]))
	}
	return strings.Join(parts, " ")
}

// num renders JSON numbers (float64 after round-trip) without a
// trailing .0 for integral values.
func num(v any) any {
	if f, ok := v.(float64); ok && f == float64(int64(f)) {
		return int64(f)
	}
	return v
}

func fmtFloat(v any) string {
	f, ok := v.(float64)
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.6f", f)
}

func fmtDur(v any) string {
	f, ok := v.(float64)
	if !ok {
		return "-"
	}
	return time.Duration(int64(f)).Round(time.Millisecond).String()
}
