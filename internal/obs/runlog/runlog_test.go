package runlog

import (
	"bytes"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestRoundTripAndSummarize(t *testing.T) {
	var buf bytes.Buffer
	r := New(&buf)
	r.Log(TypeConfig, map[string]any{"scenario": "Mul-Exp", "window": 32, "epochs": 2})
	r.Log(TypeEpoch, map[string]any{
		"epoch": 0, "train_loss": 0.02, "valid_loss": 0.018, "grad_norm": 1.5,
		"lr": 0.001, "dur_ns": int64(250e6), "improved": true, "best_epoch": 0,
	})
	r.Log(TypeEpoch, map[string]any{
		"epoch": 1, "train_loss": 0.015, "valid_loss": 0.02,
		"lr": 0.001, "dur_ns": int64(240e6), "improved": false, "best_epoch": 0,
	})
	r.Log(TypeEarlyStop, map[string]any{"epoch": 1, "best_epoch": 0, "best_valid_loss": 0.018, "patience": 1})
	r.Log(TypeProfile, map[string]any{"layers": []any{
		map[string]any{"layer": "tcn[0]", "fwd_calls": 40, "bwd_calls": 40, "fwd_ns": int64(9e6), "bwd_ns": int64(12e6)},
	}})
	r.Log(TypeFinal, map[string]any{"test_mse": 0.0012, "test_mae": 0.02})
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 6 {
		t.Fatalf("got %d events, want 6", len(events))
	}
	if events[0].Type != TypeConfig || events[0].Time.IsZero() {
		t.Fatalf("bad first event: %+v", events[0])
	}

	sum := Summarize(events)
	for _, want := range []string{
		"config: epochs=2 scenario=Mul-Exp window=32",
		"train_loss", "0.020000", "0.015000",
		"early stop at epoch 1 (best epoch 0",
		"per-layer profile:", "tcn[0]", "9ms", "12ms",
		"final: test_mae=0.02 test_mse=0.0012",
	} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
	// Epoch without grad_norm renders a placeholder, not a crash.
	if !strings.Contains(sum, "-") {
		t.Errorf("missing placeholder for absent grad_norm:\n%s", sum)
	}
}

func TestCreateLatestAndReadFile(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "runs")
	a, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	a.Log(TypeConfig, map[string]any{"run": 1})
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := Create(dir) // same second → collision suffix
	if err != nil {
		t.Fatal(err)
	}
	b.Log(TypeConfig, map[string]any{"run": 2})
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if a.Path() == b.Path() {
		t.Fatalf("two runs share a path: %s", a.Path())
	}
	latest, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if latest != b.Path() {
		t.Fatalf("Latest = %s, want %s", latest, b.Path())
	}
	events, err := ReadFile(latest)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Data["run"] != float64(2) {
		t.Fatalf("unexpected events: %+v", events)
	}
}

func TestNilRunIsSafe(t *testing.T) {
	var r *Run
	r.Log(TypeEpoch, map[string]any{"epoch": 0})
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentLog(t *testing.T) {
	var buf bytes.Buffer
	r := New(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Log(TypeEpoch, map[string]any{"g": g, "i": i})
			}
		}(g)
	}
	wg.Wait()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 800 {
		t.Fatalf("got %d events, want 800", len(events))
	}
}
