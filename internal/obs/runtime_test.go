package obs

import (
	"strings"
	"testing"
)

func TestRuntimeMetricsRefreshAtScrapeTime(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	RegisterRuntimeMetrics(r) // idempotent

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range []string{
		"rptcn_go_goroutines",
		"rptcn_go_heap_alloc_bytes",
		"rptcn_go_heap_sys_bytes",
		"rptcn_go_gc_pause_seconds_total",
		"rptcn_go_gc_runs_total",
	} {
		if !strings.Contains(out, name+" ") {
			t.Errorf("exposition missing %s", name)
		}
	}
	// The collector must have filled in live values at scrape time.
	if g := r.Gauge("rptcn_go_goroutines", ""); g.Value() < 1 {
		t.Errorf("goroutine gauge = %v, want >= 1", g.Value())
	}
	if g := r.Gauge("rptcn_go_heap_alloc_bytes", ""); g.Value() <= 0 {
		t.Errorf("heap alloc gauge = %v, want > 0", g.Value())
	}
	// Double registration must not have duplicated collectors.
	r.collectorMu.Lock()
	n := len(r.collectors)
	r.collectorMu.Unlock()
	if n != 1 {
		t.Errorf("collectors registered %d times, want 1", n)
	}
}

func TestRegisterCollectorRunsOnSnapshot(t *testing.T) {
	r := NewRegistry()
	calls := 0
	g := r.Gauge("refresh_me", "")
	r.RegisterCollector(func() {
		calls++
		g.Set(float64(calls))
	})
	r.Snapshot()
	r.Snapshot()
	if calls != 2 {
		t.Fatalf("collector ran %d times, want 2", calls)
	}
	if g.Value() != 2 {
		t.Fatalf("gauge = %v, want 2", g.Value())
	}
	r.RegisterCollector(nil) // must be ignored
	r.Snapshot()
	if calls != 3 {
		t.Fatalf("collector ran %d times after nil registration, want 3", calls)
	}
}
