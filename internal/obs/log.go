package obs

import (
	"io"
	"log/slog"
	"os"
	"sync/atomic"
)

// baseLogger is the process-wide structured logger. Swappable atomically
// so tests and commands can redirect or silence it without races.
var baseLogger atomic.Pointer[slog.Logger]

func init() {
	baseLogger.Store(slog.New(slog.NewTextHandler(os.Stderr, nil)))
}

// SetLogger replaces the process-wide base logger. Pass the result of
// NewLogger, or any slog.Logger. A nil logger resets to the default
// stderr text handler.
func SetLogger(l *slog.Logger) {
	if l == nil {
		l = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	baseLogger.Store(l)
}

// Logger returns the shared structured logger tagged with a component
// attribute ("server", "train", ...), so one log stream interleaves all
// subsystems distinguishably.
func Logger(component string) *slog.Logger {
	return baseLogger.Load().With(slog.String("component", component))
}

// NewLogger builds a text-handler logger writing to w at the given level.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// NopLogger returns a logger that discards everything — for tests and for
// callers that want instrumentation without log output.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
}
