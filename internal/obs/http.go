package obs

import (
	"net/http"
)

// Handler returns an http.Handler serving the registry in the Prometheus
// text exposition format — mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.WriteTo(w)
	})
}
