package sketch

import (
	"math"
	"sort"
	"testing"
)

// exactQuantile is the reference: sorted-order linear-rank quantile.
func exactQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	r := q * float64(len(sorted)-1)
	i := int(r)
	if i >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := r - float64(i)
	return sorted[i] + frac*(sorted[i+1]-sorted[i])
}

// rankOf returns the fraction of values ≤ v.
func rankOf(sorted []float64, v float64) float64 {
	return float64(sort.SearchFloat64s(sorted, v)) / float64(len(sorted))
}

func TestTDigestEmptyAndEdgeQuantiles(t *testing.T) {
	d := NewTDigest(64)
	if !math.IsNaN(d.Quantile(0.5)) || !math.IsNaN(d.Min()) || !math.IsNaN(d.Max()) {
		t.Fatal("empty digest should report NaN")
	}
	if !math.IsNaN(d.Quantile(-0.1)) || !math.IsNaN(d.Quantile(1.1)) || !math.IsNaN(d.Quantile(math.NaN())) {
		t.Fatal("out-of-range q should report NaN")
	}
	d.Add(3)
	d.Add(math.NaN()) // dropped
	d.Add(math.Inf(1))
	if d.Count() != 1 {
		t.Fatalf("count = %d after non-finite adds, want 1", d.Count())
	}
	if d.Quantile(0) != 3 || d.Quantile(1) != 3 || d.Quantile(0.5) != 3 {
		t.Fatalf("single-value quantiles = %v %v %v", d.Quantile(0), d.Quantile(1), d.Quantile(0.5))
	}
}

func TestTDigestRankAccuracy(t *testing.T) {
	// Log-normal-ish latencies: the shape where naive bucket quantiles
	// fail and the t-digest's tail resolution matters.
	rng := lcg(3)
	const n = 200000
	d := NewTDigest(64)
	values := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		// Box–Muller from two uniforms.
		u1, u2 := rng.float(), rng.float()
		if u1 < 1e-12 {
			u1 = 1e-12
		}
		z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
		v := math.Exp(0.8 * z) // heavy right tail
		values = append(values, v)
		d.Add(v)
	}
	sort.Float64s(values)
	for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.99, 0.999} {
		est := d.Quantile(q)
		gotRank := rankOf(values, est)
		// k1 scale bound: rank error ≲ 4·q(1-q)/δ; allow 2x slack for
		// interpolation.
		bound := 8 * q * (1 - q) / 64
		if bound < 0.001 {
			bound = 0.001
		}
		if math.Abs(gotRank-q) > bound {
			t.Errorf("q=%v: estimate %v has rank %v (err %v > bound %v)",
				q, est, gotRank, math.Abs(gotRank-q), bound)
		}
	}
	if d.Quantile(0) != values[0] || d.Quantile(1) != values[n-1] {
		t.Errorf("extremes not exact: %v/%v vs %v/%v",
			d.Quantile(0), d.Quantile(1), values[0], values[n-1])
	}
}

func TestTDigestBoundedSize(t *testing.T) {
	d := NewTDigest(64)
	rng := lcg(9)
	for i := 0; i < 500000; i++ {
		d.Add(rng.float() * 100)
	}
	// k1 with δ=64 keeps well under 2δ centroids.
	if c := d.Centroids(); c > 128 {
		t.Fatalf("centroids = %d after 500k adds, want ≤ 128", c)
	}
}

func TestTDigestDeterministicForFixedOrder(t *testing.T) {
	run := func() (float64, float64, float64, int) {
		d := NewTDigest(64)
		rng := lcg(11)
		for i := 0; i < 100000; i++ {
			d.Add(rng.float() * 10)
		}
		return d.Quantile(0.5), d.Quantile(0.9), d.Quantile(0.99), d.Centroids()
	}
	p50a, p90a, p99a, ca := run()
	p50b, p90b, p99b, cb := run()
	if p50a != p50b || p90a != p90b || p99a != p99b || ca != cb {
		t.Fatalf("same input order diverged: (%v %v %v %d) vs (%v %v %v %d)",
			p50a, p90a, p99a, ca, p50b, p90b, p99b, cb)
	}
}

func TestTDigestMerge(t *testing.T) {
	rng := lcg(5)
	full := NewTDigest(64)
	parts := []*TDigest{NewTDigest(64), NewTDigest(64), NewTDigest(64)}
	var values []float64
	for i := 0; i < 90000; i++ {
		v := rng.float() * rng.float() * 50 // skewed
		values = append(values, v)
		full.Add(v)
		parts[i%3].Add(v)
	}
	merged := NewTDigest(64)
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Count() != full.Count() {
		t.Fatalf("merged count %d != %d", merged.Count(), full.Count())
	}
	sort.Float64s(values)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		est := merged.Quantile(q)
		if r := rankOf(values, est); math.Abs(r-q) > 0.02 {
			t.Errorf("merged q=%v rank error %v", q, math.Abs(r-q))
		}
	}
	if merged.Min() != values[0] || merged.Max() != values[len(values)-1] {
		t.Errorf("merged extremes wrong")
	}
	// Merging nil and empty digests is a no-op.
	before := merged.Quantile(0.5)
	merged.Merge(nil)
	merged.Merge(NewTDigest(64))
	if merged.Quantile(0.5) != before {
		t.Error("nil/empty merge changed the digest")
	}
}
