package sketch

import (
	"fmt"
	"testing"
)

// The fleet bench: Record cost and live sketch footprint as the number
// of distinct entities grows. The headline claim is the flat
// sketch_bytes column — O(K) memory at 100, 2000, and 8000 entities —
// with Record staying well under a microsecond, i.e. noise against a
// millisecond-scale forecast.
func BenchmarkFleetRecord(b *testing.B) {
	for _, entities := range []int{100, 2000, 8000} {
		b.Run(fmt.Sprintf("entities=%d", entities), func(b *testing.B) {
			f := NewFleet(Config{K: 32, Compression: 64})
			names := make([]string, entities)
			for i := range names {
				names[i] = fmt.Sprintf("m_%d", i)
			}
			rng := lcg(1)
			idx := make([]int, 8192)
			lat := make([]float64, 8192)
			for i := range idx {
				idx[i] = int(rng.float() * rng.float() * float64(entities))
				lat[i] = 0.001 + rng.float()*0.02
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := i & 8191
				f.Record(names[idx[j]], lat[j], j&63 == 0)
			}
			b.StopTimer()
			b.ReportMetric(float64(f.Footprint()), "sketch_bytes")
		})
	}
}

func BenchmarkFleetReport(b *testing.B) {
	f := NewFleet(Config{K: 32, Compression: 64})
	feedFleet(f, 2000, 100000, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Report()
	}
}

func BenchmarkTDigestAdd(b *testing.B) {
	d := NewTDigest(64)
	rng := lcg(2)
	vals := make([]float64, 8192)
	for i := range vals {
		vals[i] = rng.float() * 0.05
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Add(vals[i&8191])
	}
}

func BenchmarkSpaceSavingAdd(b *testing.B) {
	s := NewSpaceSaving(32)
	names := make([]string, 4096)
	for i := range names {
		names[i] = fmt.Sprintf("m_%d", i)
	}
	rng := lcg(4)
	idx := make([]int, 8192)
	for i := range idx {
		idx[i] = int(rng.float() * rng.float() * 4096)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(names[idx[i&8191]], 1)
	}
}
