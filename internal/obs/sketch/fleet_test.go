package sketch

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// feedFleet streams a deterministic workload of n requests over
// `entities` distinct entities: half the traffic concentrates on three
// hot entities (m_0 ≻ m_1 ≻ m_2 — true heavy hitters, above the
// total/K Space-Saving threshold), the rest spreads uniformly.
func feedFleet(f *Fleet, entities, n int, seed uint64) {
	rng := lcg(seed)
	for i := 0; i < n; i++ {
		var idx int
		switch p := rng.float(); {
		case p < 0.25:
			idx = 0
		case p < 0.40:
			idx = 1
		case p < 0.50:
			idx = 2
		default:
			idx = rng.intn(entities)
		}
		lat := 0.001 + rng.float()*0.02
		if idx == 0 {
			lat *= 4 // entity m_0 is the slow offender
		}
		f.Record(fmt.Sprintf("m_%d", idx), lat, rng.intn(50) == 0)
	}
}

func TestFleetReportDeterministicForFixedOrder(t *testing.T) {
	run := func() Report {
		f := NewFleet(Config{K: 16, Compression: 64})
		feedFleet(f, 500, 40000, 21)
		return f.Report()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same input order produced different reports:\n%+v\n%+v", a, b)
	}
	if a.Requests != 40000 {
		t.Fatalf("requests = %d", a.Requests)
	}
	if len(a.TopByCount) != 16 || len(a.Entities) != 16 {
		t.Fatalf("top-K sizes: count=%d entities=%d, want 16", len(a.TopByCount), len(a.Entities))
	}
	if a.TopByCount[0].Key != "m_0" {
		t.Fatalf("heaviest entity = %s, want m_0", a.TopByCount[0].Key)
	}
	if a.TopByLatency[0].Key != "m_0" {
		t.Fatalf("top latency-sum entity = %s, want m_0 (4x slower)", a.TopByLatency[0].Key)
	}
	// The slow entity's p99 must exceed the global p99 of the mixed
	// stream — the "which machine is slow" answer.
	if a.Entities[0].Latency.P99 <= a.Global.P99 {
		t.Fatalf("m_0 p99 %v not above global p99 %v", a.Entities[0].Latency.P99, a.Global.P99)
	}
	if a.Global.Count != 40000 {
		t.Fatalf("global count = %d", a.Global.Count)
	}
}

func TestFleetMemoryFlatAcrossEntityCount(t *testing.T) {
	// The O(K) claim: footprint must not grow with distinct-entity
	// count. 2000 vs 8000 entities over the same request volume.
	foot := func(entities int) int {
		f := NewFleet(Config{K: 32, Compression: 64})
		feedFleet(f, entities, 120000, 5)
		if len(f.digests) > 32 {
			t.Fatalf("%d per-entity digests for K=32", len(f.digests))
		}
		return f.Footprint()
	}
	small, large := foot(2000), foot(8000)
	// Identical request volume, 4x the entities: allow only key-length
	// noise (monitored keys differ), not proportional growth.
	if float64(large) > 1.25*float64(small) {
		t.Fatalf("footprint grew with entity count: %d bytes @2000 vs %d bytes @8000", small, large)
	}
}

func TestFleetEvictionDropsDigest(t *testing.T) {
	f := NewFleet(Config{K: 2, Compression: 64})
	f.Record("a", 0.01, false)
	f.Record("a", 0.01, false)
	f.Record("b", 0.01, false)
	f.Record("c", 0.01, false) // evicts b (the minimum)
	f.mu.Lock()
	_, hasB := f.digests["b"]
	_, hasC := f.digests["c"]
	n := len(f.digests)
	f.mu.Unlock()
	if hasB || !hasC || n != 2 {
		t.Fatalf("digest set after eviction: hasB=%v hasC=%v n=%d", hasB, hasC, n)
	}
}

func TestFleetAnonymousEntity(t *testing.T) {
	f := NewFleet(Config{})
	f.Record("", 0.005, true)
	rep := f.Report()
	if rep.TopByCount[0].Key != "_none" || rep.Errors != 1 {
		t.Fatalf("anonymous traffic: %+v", rep.TopByCount)
	}
}

func TestFleetConcurrentRecordAndReport(t *testing.T) {
	// Race-cleanliness: writers on every core against concurrent
	// Report/Footprint readers. Run with -race in CI.
	f := NewFleet(Config{K: 8, Compression: 32})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := lcg(uint64(w + 1))
			for i := 0; i < 5000; i++ {
				f.Record(fmt.Sprintf("e%d", rng.intn(100)), rng.float()*0.01, rng.intn(20) == 0)
			}
		}(w)
	}
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = f.Report()
					_ = f.Footprint()
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	if rep := f.Report(); rep.Requests != 20000 {
		t.Fatalf("requests = %d, want 20000", rep.Requests)
	}
}
