package sketch

import (
	"fmt"
	"reflect"
	"testing"
)

// lcg is a tiny deterministic generator so tests never touch math/rand's
// global state.
type lcg uint64

func (l *lcg) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l)
}

func (l *lcg) intn(n int) int { return int(l.next() >> 33 % uint64(n)) }

func (l *lcg) float() float64 { return float64(l.next()>>11) / (1 << 53) }

func TestSpaceSavingExactBelowCapacity(t *testing.T) {
	s := NewSpaceSaving(8)
	for i := 0; i < 5; i++ {
		for j := 0; j <= i; j++ {
			if ev := s.Add(fmt.Sprintf("k%d", i), 1); ev != "" {
				t.Fatalf("unexpected eviction %q below capacity", ev)
			}
		}
	}
	for i := 0; i < 5; i++ {
		it, ok := s.Estimate(fmt.Sprintf("k%d", i))
		if !ok || it.Weight != float64(i+1) || it.Err != 0 {
			t.Fatalf("k%d = %+v, ok=%v; want exact count %d", i, it, ok, i+1)
		}
	}
	top := s.TopK()
	if top[0].Key != "k4" || top[len(top)-1].Key != "k0" {
		t.Fatalf("topk order = %v", top)
	}
}

func TestSpaceSavingHeavyHittersSurviveChurn(t *testing.T) {
	// 3 heavy keys drown in 1000 distinct light keys; the heavies must
	// stay monitored with bounded overestimation.
	s := NewSpaceSaving(16)
	rng := lcg(7)
	true_ := map[string]float64{"hot_a": 0, "hot_b": 0, "hot_c": 0}
	for i := 0; i < 30000; i++ {
		if rng.intn(10) < 6 {
			k := []string{"hot_a", "hot_b", "hot_c"}[rng.intn(3)]
			s.Add(k, 1)
			true_[k]++
		} else {
			s.Add(fmt.Sprintf("cold_%d", rng.intn(1000)), 1)
		}
	}
	for k, want := range true_ {
		it, ok := s.Estimate(k)
		if !ok {
			t.Fatalf("heavy hitter %s evicted", k)
		}
		if it.Weight < want {
			t.Fatalf("%s estimate %v underestimates true %v", k, it.Weight, want)
		}
		if it.Weight-it.Err > want {
			t.Fatalf("%s estimate %v - err %v exceeds true %v", k, it.Weight, it.Err, want)
		}
	}
	if s.Len() != 16 {
		t.Fatalf("len = %d, want capacity 16", s.Len())
	}
}

func TestSpaceSavingDeterministicForFixedOrder(t *testing.T) {
	run := func() []Item {
		s := NewSpaceSaving(8)
		rng := lcg(42)
		for i := 0; i < 5000; i++ {
			s.Add(fmt.Sprintf("e%d", rng.intn(300)), 1+rng.float())
		}
		return s.TopK()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same input order produced different top-K:\n%v\n%v", a, b)
	}
}

func TestSpaceSavingEvictionReported(t *testing.T) {
	s := NewSpaceSaving(2)
	s.Add("a", 5)
	s.Add("b", 3)
	if ev := s.Add("c", 1); ev != "b" {
		t.Fatalf("evicted %q, want b (the minimum)", ev)
	}
	it, _ := s.Estimate("c")
	if it.Weight != 4 || it.Err != 3 {
		t.Fatalf("c = %+v, want weight 4 err 3", it)
	}
	if _, ok := s.Estimate("b"); ok {
		t.Fatal("b still monitored after eviction")
	}
}

func TestSpaceSavingZeroWeightNoops(t *testing.T) {
	s := NewSpaceSaving(1)
	s.Add("a", 2)
	if ev := s.Add("b", 0); ev != "" {
		t.Fatalf("zero-weight insert evicted %q", ev)
	}
	if _, ok := s.Estimate("b"); ok {
		t.Fatal("zero-weight key monitored")
	}
}
