// Package sketch provides bounded-memory streaming summaries for
// fleet-scale telemetry: a Space-Saving heavy-hitter sketch and a
// mergeable t-digest quantile sketch. Both are deterministic for a fixed
// input order, allocation-lean, and sized O(K) (respectively O(δ))
// regardless of how many distinct entities or observations stream
// through — the property that lets a single process answer "which of my
// 4034 machines are slow, erroring, or dominating load?" without
// per-entity metric series exploding label cardinality.
//
// Neither sketch is safe for concurrent use on its own; Fleet (fleet.go)
// is the concurrency-safe aggregator the serving path records into.
package sketch

import "sort"

// Item is one monitored key in a SpaceSaving sketch.
type Item struct {
	Key string `json:"key"`
	// Weight is the estimated total weight Added for Key. It never
	// underestimates: true ≤ Weight ≤ true + Err.
	Weight float64 `json:"weight"`
	// Err is the maximum possible overestimation, inherited from the
	// entry this key displaced (0 while the sketch was below capacity
	// when the key entered).
	Err float64 `json:"err,omitempty"`
}

// SpaceSaving is the Metwally–Agrawal–El Abbadi heavy-hitter sketch: it
// monitors at most K keys and guarantees that any key whose true total
// weight exceeds total/K is monitored, with per-key error bounded by the
// smallest monitored weight. Memory is O(K) no matter how many distinct
// keys stream through.
//
// The implementation is deterministic for a fixed Add order: when a new
// key displaces the minimum, ties between equal-weight minima break by
// slot order (oldest slot first), never by map iteration.
type SpaceSaving struct {
	k       int
	index   map[string]int // key → slot in entries
	entries []Item
}

// NewSpaceSaving returns a sketch monitoring at most k keys (k < 1 is
// raised to 1).
func NewSpaceSaving(k int) *SpaceSaving {
	if k < 1 {
		k = 1
	}
	return &SpaceSaving{k: k, index: make(map[string]int, k)}
}

// K returns the sketch capacity.
func (s *SpaceSaving) K() int { return s.k }

// Len returns how many keys are currently monitored (≤ K).
func (s *SpaceSaving) Len() int { return len(s.entries) }

// Add folds weight w into key and returns the key that was evicted to
// make room, or "" when none was. Non-positive weights are no-ops for
// unmonitored keys (inserting at weight 0 could displace a real entry).
func (s *SpaceSaving) Add(key string, w float64) (evicted string) {
	if i, ok := s.index[key]; ok {
		if w > 0 {
			s.entries[i].Weight += w
		}
		return ""
	}
	if w <= 0 {
		return ""
	}
	if len(s.entries) < s.k {
		s.index[key] = len(s.entries)
		s.entries = append(s.entries, Item{Key: key, Weight: w})
		return ""
	}
	// Displace the minimum-weight entry; the first minimum in slot order
	// keeps eviction deterministic.
	min := 0
	for i := 1; i < len(s.entries); i++ {
		if s.entries[i].Weight < s.entries[min].Weight {
			min = i
		}
	}
	old := s.entries[min]
	delete(s.index, old.Key)
	s.index[key] = min
	s.entries[min] = Item{Key: key, Weight: old.Weight + w, Err: old.Weight}
	return old.Key
}

// Estimate returns the monitored item for key, or false when the key is
// not currently monitored.
func (s *SpaceSaving) Estimate(key string) (Item, bool) {
	i, ok := s.index[key]
	if !ok {
		return Item{}, false
	}
	return s.entries[i], true
}

// TopK returns the monitored items ordered by descending weight, ties
// broken by ascending key — a deterministic "worst offenders" view.
func (s *SpaceSaving) TopK() []Item {
	out := make([]Item, len(s.entries))
	copy(out, s.entries)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Key < out[j].Key
	})
	return out
}
