package sketch

import (
	"math"
	"sort"
)

// TDigest is Dunning's merging t-digest: a bounded-size quantile sketch
// whose centroids are small near the tails and large in the middle, so
// p99 stays accurate while memory is O(compression) regardless of how
// many values stream through. Incoming values buffer and periodically
// compact into the centroid list, which keeps Add amortized O(log n) of
// the buffer sort and allocation-free between compactions.
//
// Accuracy: with the k1 scale function used here, the rank error of
// Quantile(q) is bounded by ~q(1-q)·4/compression — at compression 64
// that is ≤ 1.6 % of rank at the median and ≤ 0.07 % at p99; the
// extremes are exact (min and max are tracked separately).
//
// Determinism: given the same sequence of Add/Merge calls, the centroid
// list and every quantile are bit-identical — compaction happens at
// fixed buffer fills, uses a stable two-way merge, and involves no
// randomness. Two digests fed the same stream in the same order agree
// exactly; this is what lets tests pin fleet telemetry bitwise.
//
// Not safe for concurrent use; Fleet wraps it.
type TDigest struct {
	compression float64
	maxBuf      int

	buf     []float64 // unmerged observations (weight 1 each)
	means   []float64 // merged centroids, ascending mean
	weights []float64
	total   float64 // merged weight

	count    uint64
	min, max float64
}

// NewTDigest returns a digest with the given compression δ (≤ 0 selects
// 64; values below 20 are raised to 20 — accuracy collapses under that).
func NewTDigest(compression float64) *TDigest {
	if compression <= 0 {
		compression = 64
	}
	if compression < 20 {
		compression = 20
	}
	maxBuf := int(4 * compression)
	if maxBuf < 64 {
		maxBuf = 64
	}
	return &TDigest{compression: compression, maxBuf: maxBuf}
}

// Add records one observation. Non-finite values are dropped.
func (t *TDigest) Add(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	if t.count == 0 || v < t.min {
		t.min = v
	}
	if t.count == 0 || v > t.max {
		t.max = v
	}
	t.count++
	t.buf = append(t.buf, v)
	if len(t.buf) >= t.maxBuf {
		t.compact()
	}
}

// Count returns how many values have been observed.
func (t *TDigest) Count() uint64 { return t.count }

// Min returns the smallest observation (NaN when empty).
func (t *TDigest) Min() float64 {
	if t.count == 0 {
		return math.NaN()
	}
	return t.min
}

// Max returns the largest observation (NaN when empty).
func (t *TDigest) Max() float64 {
	if t.count == 0 {
		return math.NaN()
	}
	return t.max
}

// Centroids returns the current merged centroid count (after compacting
// the buffer) — the O(δ) size bound tests assert on.
func (t *TDigest) Centroids() int {
	t.compact()
	return len(t.means)
}

// Merge folds o into t. Both digests compact first; o is not otherwise
// modified. Merging preserves the O(δ) size bound and is deterministic
// for a fixed call order.
func (t *TDigest) Merge(o *TDigest) {
	if o == nil || o.count == 0 {
		return
	}
	o.compact()
	t.compact()
	if t.count == 0 || o.min < t.min {
		t.min = o.min
	}
	if t.count == 0 || o.max > t.max {
		t.max = o.max
	}
	t.count += o.count
	t.mergeSorted(o.means, o.weights)
}

// compact folds the buffered values into the centroid list.
func (t *TDigest) compact() {
	if len(t.buf) == 0 {
		return
	}
	sort.Float64s(t.buf)
	t.mergeSorted(t.buf, nil)
	t.buf = t.buf[:0]
}

// mergeSorted merges the centroid list with a second ascending stream
// (weights nil means every entry weighs 1) under the k1 scale function,
// replacing t.means/t.weights and updating t.total.
func (t *TDigest) mergeSorted(ms, ws []float64) {
	inW := func(i int) float64 {
		if ws == nil {
			return 1
		}
		return ws[i]
	}
	inTotal := 0.0
	if ws == nil {
		inTotal = float64(len(ms))
	} else {
		for _, w := range ws {
			inTotal += w
		}
	}
	newTotal := t.total + inTotal
	if newTotal == 0 {
		return
	}

	var nm, nw []float64
	ci, bi := 0, 0
	next := func() (m, w float64, ok bool) {
		switch {
		case ci < len(t.means) && (bi >= len(ms) || t.means[ci] <= ms[bi]):
			m, w = t.means[ci], t.weights[ci]
			ci++
			return m, w, true
		case bi < len(ms):
			m, w = ms[bi], inW(bi)
			bi++
			return m, w, true
		}
		return 0, 0, false
	}

	cm, cw, started := 0.0, 0.0, false
	wSoFar := 0.0
	qLimit := newTotal * t.qBound(0)
	for {
		m, w, ok := next()
		if !ok {
			break
		}
		if !started {
			cm, cw, started = m, w, true
			continue
		}
		if wSoFar+cw+w <= qLimit {
			// Fold into the current centroid.
			cw += w
			cm += (m - cm) * (w / cw)
		} else {
			nm = append(nm, cm)
			nw = append(nw, cw)
			wSoFar += cw
			qLimit = newTotal * t.qBound(wSoFar/newTotal)
			cm, cw = m, w
		}
	}
	if started {
		nm = append(nm, cm)
		nw = append(nw, cw)
	}
	t.means, t.weights = nm, nw
	t.total = newTotal
}

// scale is the k1 scale function k(q) = δ/2π · asin(2q−1).
func (t *TDigest) scale(q float64) float64 {
	switch {
	case q <= 0:
		return -t.compression / 4
	case q >= 1:
		return t.compression / 4
	}
	return t.compression / (2 * math.Pi) * math.Asin(2*q-1)
}

// qBound returns the largest cumulative fraction a centroid starting at
// fraction q0 may extend to: q(k(q0)+1).
func (t *TDigest) qBound(q0 float64) float64 {
	k := t.scale(q0) + 1
	lim := t.compression / 4
	switch {
	case k >= lim:
		return 1
	case k <= -lim:
		return 0
	}
	return (math.Sin(2*math.Pi*k/t.compression) + 1) / 2
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by interpolating between
// centroid means, anchored at the exact min and max. Returns NaN when
// empty or q is out of range.
func (t *TDigest) Quantile(q float64) float64 {
	if math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	t.compact()
	if t.total == 0 {
		return math.NaN()
	}
	if q == 0 {
		return t.min
	}
	if q == 1 {
		return t.max
	}
	idx := q * t.total
	// Each centroid sits at its mean, located at the midpoint of its
	// weight span; interpolate linearly between adjacent centers, with
	// min at rank 0 and max at rank total as exact anchors.
	cum := 0.0
	prevMean, prevCenter := t.min, 0.0
	for i := range t.means {
		center := cum + t.weights[i]/2
		if idx <= center {
			frac := 0.0
			if center > prevCenter {
				frac = (idx - prevCenter) / (center - prevCenter)
			}
			return clampF(prevMean+frac*(t.means[i]-prevMean), t.min, t.max)
		}
		prevMean, prevCenter = t.means[i], center
		cum += t.weights[i]
	}
	frac := 1.0
	if t.total > prevCenter {
		frac = (idx - prevCenter) / (t.total - prevCenter)
	}
	return clampF(prevMean+frac*(t.max-prevMean), t.min, t.max)
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
