package sketch

import "sync"

// Config tunes a Fleet.
type Config struct {
	// K is the heavy-hitter capacity: how many entities are monitored
	// per dimension and how many get their own latency digest
	// (default 32).
	K int
	// Compression is the t-digest δ for the global and per-entity
	// latency sketches (default 64).
	Compression float64
}

func (c *Config) fillDefaults() {
	if c.K <= 0 {
		c.K = 32
	}
	if c.Compression <= 0 {
		c.Compression = 64
	}
}

// Fleet is the concurrency-safe telemetry aggregator the serving path
// records every request into: three Space-Saving sketches rank entities
// by request count, latency sum, and error count; a global t-digest
// tracks the full latency distribution; and each entity currently
// monitored by the request-count sketch carries its own latency digest.
// An entity's digest is dropped the moment the sketch evicts it, so
// total memory is O(K·δ) no matter how many distinct entities the fleet
// has — the cardinality-safety the per-entity label approach lacks.
//
// Record is a single uncontended mutex plus amortized-O(1) sketch
// updates (~100 ns), so it is safe to call on the serving hot path.
// All reads (Report) are deterministic for a fixed Record order.
type Fleet struct {
	mu  sync.Mutex
	cfg Config

	byCount   *SpaceSaving
	byLatency *SpaceSaving
	byError   *SpaceSaving
	digests   map[string]*TDigest // latency digests for byCount-monitored entities
	global    *TDigest

	requests uint64
	errors   uint64
}

// NewFleet returns an empty aggregator.
func NewFleet(cfg Config) *Fleet {
	cfg.fillDefaults()
	return &Fleet{
		cfg:       cfg,
		byCount:   NewSpaceSaving(cfg.K),
		byLatency: NewSpaceSaving(cfg.K),
		byError:   NewSpaceSaving(cfg.K),
		digests:   make(map[string]*TDigest, cfg.K),
		global:    NewTDigest(cfg.Compression),
	}
}

// Record folds one served request into the sketches. An empty entity is
// recorded as "_none" so anonymous traffic stays visible.
func (f *Fleet) Record(entity string, latencySeconds float64, isError bool) {
	if entity == "" {
		entity = "_none"
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.requests++
	if evicted := f.byCount.Add(entity, 1); evicted != "" {
		delete(f.digests, evicted)
	}
	f.byLatency.Add(entity, latencySeconds)
	if isError {
		f.errors++
		f.byError.Add(entity, 1)
	}
	f.global.Add(latencySeconds)
	d := f.digests[entity]
	if d == nil {
		d = NewTDigest(f.cfg.Compression)
		f.digests[entity] = d
	}
	d.Add(latencySeconds)
}

// Quantiles is a fixed set of latency quantiles in seconds.
type Quantiles struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

func quantilesOf(d *TDigest) Quantiles {
	if d.Count() == 0 {
		return Quantiles{}
	}
	return Quantiles{
		Count: d.Count(),
		P50:   d.Quantile(0.50),
		P90:   d.Quantile(0.90),
		P99:   d.Quantile(0.99),
		Max:   d.Max(),
	}
}

// EntityStats is one monitored entity's telemetry.
type EntityStats struct {
	Entity string `json:"entity"`
	// Requests is the Space-Saving estimate (true ≤ Requests ≤
	// true + RequestsErr).
	Requests    float64 `json:"requests"`
	RequestsErr float64 `json:"requests_err,omitempty"`
	// Latency covers only the requests observed while the entity was
	// monitored (its digest resets if it is evicted and re-enters).
	Latency Quantiles `json:"latency"`
}

// Report is a deterministic point-in-time fleet snapshot.
type Report struct {
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	K        int    `json:"k"`

	// Heavy hitters per dimension, descending weight, ties by key.
	TopByCount   []Item `json:"top_by_count"`
	TopByLatency []Item `json:"top_by_latency_sum"`
	TopByErrors  []Item `json:"top_by_errors"`

	Global Quantiles `json:"global_latency"`
	// Entities carries per-entity latency quantiles for every
	// currently monitored entity, in TopByCount order.
	Entities []EntityStats `json:"entities"`
}

// Report snapshots the sketches. Safe to call concurrently with Record.
func (f *Fleet) Report() Report {
	f.mu.Lock()
	defer f.mu.Unlock()
	rep := Report{
		Requests:     f.requests,
		Errors:       f.errors,
		K:            f.cfg.K,
		TopByCount:   f.byCount.TopK(),
		TopByLatency: f.byLatency.TopK(),
		TopByErrors:  f.byError.TopK(),
		Global:       quantilesOf(f.global),
	}
	for _, it := range rep.TopByCount {
		es := EntityStats{Entity: it.Key, Requests: it.Weight, RequestsErr: it.Err}
		if d := f.digests[it.Key]; d != nil {
			es.Latency = quantilesOf(d)
		}
		rep.Entities = append(rep.Entities, es)
	}
	return rep
}

// Footprint estimates the sketches' live memory in bytes — the number
// the fleet bench asserts stays flat as entity count grows.
func (f *Fleet) Footprint() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, s := range []*SpaceSaving{f.byCount, f.byLatency, f.byError} {
		for _, it := range s.entries {
			n += len(it.Key) + 16 // weight+err
		}
		n += len(s.entries) * 32 // map entry + header overhead, approximate
	}
	digest := func(d *TDigest) int {
		return 16*cap(d.means) + 8*cap(d.buf) + 48
	}
	n += digest(f.global)
	for k, d := range f.digests {
		n += len(k) + digest(d)
	}
	return n
}
