package obs

import (
	"strings"
	"testing"
)

func lintString(t *testing.T, doc string) []string {
	t.Helper()
	return LintExposition(strings.NewReader(doc))
}

func wantProblem(t *testing.T, probs []string, substr string) {
	t.Helper()
	for _, p := range probs {
		if strings.Contains(p, substr) {
			return
		}
	}
	t.Fatalf("no problem containing %q in %v", substr, probs)
}

func TestLintCleanDocument(t *testing.T) {
	doc := `# HELP rptcn_requests_total Requests served.
# TYPE rptcn_requests_total counter
rptcn_requests_total{route="/v1/forecast"} 12
# HELP rptcn_latency_seconds Latency.
# TYPE rptcn_latency_seconds histogram
rptcn_latency_seconds_bucket{le="0.01"} 3
rptcn_latency_seconds_bucket{le="0.1"} 8
rptcn_latency_seconds_bucket{le="+Inf"} 9
rptcn_latency_seconds_sum 0.42
rptcn_latency_seconds_count 9
# TYPE rptcn_up gauge
rptcn_up 1
`
	if probs := lintString(t, doc); len(probs) != 0 {
		t.Fatalf("clean document flagged: %v", probs)
	}
}

func TestLintCounterSuffix(t *testing.T) {
	probs := lintString(t, "# TYPE rptcn_requests counter\nrptcn_requests 1\n")
	wantProblem(t, probs, "should have the _total suffix")

	probs = lintString(t, "# TYPE rptcn_queue_depth_total gauge\nrptcn_queue_depth_total 1\n")
	wantProblem(t, probs, "must not have the _total suffix")
}

func TestLintReservedSuffixes(t *testing.T) {
	probs := lintString(t, "# TYPE rptcn_items_count gauge\nrptcn_items_count 1\n")
	wantProblem(t, probs, "reserved suffix _count")
}

func TestLintMissingType(t *testing.T) {
	probs := lintString(t, "rptcn_mystery 4\n")
	wantProblem(t, probs, "no TYPE declaration")
}

func TestLintHistogramShape(t *testing.T) {
	// Missing +Inf bucket.
	probs := lintString(t, `# TYPE h histogram
h_bucket{le="0.1"} 2
h_sum 0.2
h_count 2
`)
	wantProblem(t, probs, "missing or misplaced +Inf")

	// Non-ascending le.
	probs = lintString(t, `# TYPE h histogram
h_bucket{le="0.5"} 2
h_bucket{le="0.1"} 2
h_bucket{le="+Inf"} 2
h_sum 0.2
h_count 2
`)
	wantProblem(t, probs, "not above")

	// Non-cumulative counts.
	probs = lintString(t, `# TYPE h histogram
h_bucket{le="0.1"} 5
h_bucket{le="0.5"} 3
h_bucket{le="+Inf"} 5
h_sum 0.2
h_count 5
`)
	wantProblem(t, probs, "not cumulative")

	// _count disagrees with the +Inf bucket.
	probs = lintString(t, `# TYPE h histogram
h_bucket{le="0.1"} 2
h_bucket{le="+Inf"} 4
h_sum 0.2
h_count 7
`)
	wantProblem(t, probs, "_count 7 != +Inf bucket 4")

	// _sum/_count before the buckets.
	probs = lintString(t, `# TYPE h histogram
h_sum 0.2
h_count 2
h_bucket{le="+Inf"} 2
`)
	wantProblem(t, probs, "out of order")
}

func TestLintDuplicateSeries(t *testing.T) {
	probs := lintString(t, `# TYPE c_total counter
c_total{a="1"} 1
c_total{a="1"} 2
`)
	wantProblem(t, probs, "duplicate series")
}

func TestLintReservedLeLabel(t *testing.T) {
	probs := lintString(t, `# TYPE g gauge
g{le="0.5"} 1
`)
	wantProblem(t, probs, `reserved label "le"`)
}

func TestLintEscapedLabelValues(t *testing.T) {
	// Escaped quotes and backslashes inside label values must parse.
	doc := `# TYPE c_total counter
c_total{path="a\"b\\c"} 3
`
	if probs := lintString(t, doc); len(probs) != 0 {
		t.Fatalf("escaped label value flagged: %v", probs)
	}
}

// TestLintRegistryDefaults is the hygiene pin: everything the obs
// package itself registers — counters, gauges, histograms, runtime
// metrics — must render promlint-clean.
func TestLintRegistryDefaults(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	r.Counter("rptcn_events_total", "Events.").Add(3)
	r.Gauge("rptcn_depth", "Depth.").Set(2)
	h := r.Histogram("rptcn_lat_seconds", "Latency.", nil)
	h.Observe(0.004)
	h.ObserveExemplar(0.2, "t1", "m_1")
	r.Counter("rptcn_hits_total", "Hits.", L("route", `/x"y\z`)).Add(1)
	if probs := r.Lint(); len(probs) != 0 {
		t.Fatalf("registry output not promlint-clean:\n%s", strings.Join(probs, "\n"))
	}
}
