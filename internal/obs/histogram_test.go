package obs

import (
	"math"
	"strings"
	"testing"
)

func TestLinearAndExponentialBuckets(t *testing.T) {
	lin := LinearBuckets(0, 0.5, 4)
	want := []float64{0, 0.5, 1, 1.5}
	for i := range want {
		if lin[i] != want[i] {
			t.Fatalf("linear buckets = %v", lin)
		}
	}
	exp := ExponentialBuckets(1, 10, 3)
	if exp[0] != 1 || exp[1] != 10 || exp[2] != 100 {
		t.Fatalf("exponential buckets = %v", exp)
	}
}

func TestExponentialBucketsRejectsBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for factor <= 1")
		}
	}()
	ExponentialBuckets(1, 1, 3)
}

func TestHistogramCountsAndMean(t *testing.T) {
	h := NewHistogram(LinearBuckets(1, 1, 5)) // 1..5
	for _, v := range []float64{0.5, 1.5, 2.5, 3.5, 10} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-18.0) > 1e-12 {
		t.Fatalf("sum = %g", h.Sum())
	}
	if math.Abs(h.Mean()-3.6) > 1e-12 {
		t.Fatalf("mean = %g", h.Mean())
	}
}

func TestQuantileUniform(t *testing.T) {
	// 1000 uniform samples over (0, 10] into fixed-width buckets: the
	// interpolated quantiles should land close to the true ones.
	h := NewHistogram(LinearBuckets(1, 1, 10))
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 100) // 0.01 .. 10.00
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 5}, {0.9, 9}, {0.99, 9.9}, {1, 10},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > 0.15 {
			t.Fatalf("q%.2f = %g, want ≈%g", tc.q, got, tc.want)
		}
	}
}

func TestQuantileExponentialBuckets(t *testing.T) {
	h := NewHistogram(ExponentialBuckets(0.001, 2, 14))
	for i := 0; i < 100; i++ {
		h.Observe(0.004) // all in (0.002, 0.004]
	}
	p50 := h.Quantile(0.5)
	if p50 < 0.002 || p50 > 0.004 {
		t.Fatalf("p50 = %g outside containing bucket", p50)
	}
	// Clamp: no quantile may exceed the observed max.
	if q := h.Quantile(1); q > 0.004+1e-12 {
		t.Fatalf("p100 = %g > max observation", q)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	h := NewHistogram(nil) // default buckets
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile must be NaN")
	}
	h.Observe(0.02)
	if !math.IsNaN(h.Quantile(-0.1)) || !math.IsNaN(h.Quantile(1.1)) {
		t.Fatal("out-of-range q must be NaN")
	}
	// Single observation: every quantile is that value (clamped).
	if q := h.Quantile(0.5); math.Abs(q-0.02) > 0.01 {
		t.Fatalf("single-sample p50 = %g", q)
	}
	// Observation beyond the last bucket lands in +Inf, clamped to max.
	h2 := NewHistogram([]float64{1})
	h2.Observe(50)
	if q := h2.Quantile(0.99); q != 50 {
		t.Fatalf("overflow-bucket quantile = %g, want 50", q)
	}
}

func TestNormalizeBucketsSortsAndDedups(t *testing.T) {
	h := NewHistogram([]float64{3, 1, 2, 2, math.Inf(1)})
	h.Observe(1.5)
	snap := h.snapshotValue()
	// 3 finite bounds + the implicit +Inf bucket.
	if len(snap.Buckets) != 4 {
		t.Fatalf("buckets = %+v", snap.Buckets)
	}
	for i := 1; i < len(snap.Buckets); i++ {
		if snap.Buckets[i].Upper <= snap.Buckets[i-1].Upper {
			t.Fatal("bucket bounds must be strictly ascending")
		}
	}
}

func TestHistogramExpositionLines(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1}, L("path", "/v1/forecast"))
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{path="/v1/forecast",le="0.1"} 1`,
		`lat_seconds_bucket{path="/v1/forecast",le="1"} 2`,
		`lat_seconds_bucket{path="/v1/forecast",le="+Inf"} 3`,
		`lat_seconds_count{path="/v1/forecast"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
