package obs

import (
	"runtime"
	"sync"
)

// Collector support: a collector is a callback invoked immediately
// before the registry is read (WriteTo or Snapshot), so gauges whose
// source of truth lives elsewhere — the Go runtime, a rolling window —
// are refreshed at scrape time instead of on a polling loop.

// RegisterCollector adds a callback run before every exposition or
// snapshot. Collectors run outside the registry locks and may therefore
// create and set metrics freely; they must not call WriteTo or Snapshot
// themselves.
func (r *Registry) RegisterCollector(c func()) {
	if c == nil {
		return
	}
	r.collectorMu.Lock()
	r.collectors = append(r.collectors, c)
	r.collectorMu.Unlock()
}

// collect runs the registered collectors.
func (r *Registry) collect() {
	r.collectorMu.Lock()
	cs := make([]func(), len(r.collectors))
	copy(cs, r.collectors)
	r.collectorMu.Unlock()
	for _, c := range cs {
		c()
	}
}

// runtimeRegistered guards against double registration per registry.
var runtimeRegistered sync.Map // *Registry → struct{}

// RegisterRuntimeMetrics exports Go runtime health as gauges, refreshed
// at scrape time by a collector:
//
//	rptcn_go_goroutines              current goroutine count
//	rptcn_go_heap_alloc_bytes        live heap bytes (MemStats.HeapAlloc)
//	rptcn_go_heap_sys_bytes          heap obtained from the OS
//	rptcn_go_gc_pause_seconds_total  cumulative stop-the-world pause time
//	rptcn_go_gc_runs_total           completed GC cycles
//
// Repeated calls for the same registry are no-ops.
func RegisterRuntimeMetrics(r *Registry) {
	if _, loaded := runtimeRegistered.LoadOrStore(r, struct{}{}); loaded {
		return
	}
	goroutines := r.Gauge("rptcn_go_goroutines", "Current number of goroutines.")
	heapAlloc := r.Gauge("rptcn_go_heap_alloc_bytes", "Bytes of allocated heap objects.")
	heapSys := r.Gauge("rptcn_go_heap_sys_bytes", "Heap memory obtained from the OS.")
	// The cumulative GC stats are true counters (a _total-suffixed gauge
	// is a promlint violation); the collector feeds them deltas against
	// the runtime's monotone totals.
	gcPause := r.Counter("rptcn_go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.")
	gcRuns := r.Counter("rptcn_go_gc_runs_total", "Completed GC cycles.")
	var gcMu sync.Mutex // concurrent scrapes run collectors concurrently
	var lastPause, lastRuns float64
	r.RegisterCollector(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heapAlloc.Set(float64(ms.HeapAlloc))
		heapSys.Set(float64(ms.HeapSys))
		gcMu.Lock()
		pause, runs := float64(ms.PauseTotalNs)/1e9, float64(ms.NumGC)
		gcPause.Add(pause - lastPause)
		gcRuns.Add(runs - lastRuns)
		lastPause, lastRuns = pause, runs
		gcMu.Unlock()
	})
}
