package obs

import (
	"runtime"
	"strings"
	"testing"
)

func TestRegisterBuildInfo(t *testing.T) {
	r := NewRegistry()
	RegisterBuildInfo(r)
	RegisterBuildInfo(r) // idempotent

	var found *Snapshot
	for _, s := range r.Snapshot() {
		if s.Name == "rptcn_build_info" {
			if found != nil {
				t.Fatalf("rptcn_build_info registered more than once")
			}
			cp := s
			found = &cp
		}
	}
	if found == nil {
		t.Fatal("rptcn_build_info not registered")
	}
	if found.Value != 1 {
		t.Fatalf("rptcn_build_info = %v, want 1", found.Value)
	}
	for _, key := range []string{"version=", "revision=", "modified=", "go_version="} {
		if !strings.Contains(found.Labels, key) {
			t.Errorf("labels %q missing %q", found.Labels, key)
		}
	}
	if !strings.Contains(found.Labels, runtime.Version()) {
		t.Errorf("labels %q missing go version %q", found.Labels, runtime.Version())
	}
}
