package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Exposition hygiene: a self-contained promlint-style checker for the
// Prometheus text format the registry renders. It exists so a test can
// pin every metric the server registers against the rules a real
// Prometheus (and its promlint tool) enforces, instead of discovering
// scrape failures in production:
//
//   - metric and label names match the allowed grammar
//   - every sample belongs to a # TYPE-declared family, declared once,
//     with HELP (when present) preceding TYPE
//   - counters end in _total; non-counters never do
//   - no family name ends in the reserved _bucket/_sum/_count suffixes
//   - histograms render buckets in ascending le order with
//     non-decreasing cumulative counts, always include the +Inf bucket,
//     and follow with _sum then _count, where _count equals the +Inf
//     bucket
//   - the "le" label appears only on histogram _bucket samples
//   - no duplicate series, every value parses

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Lint renders the registry and checks the output, returning one
// message per problem (empty means clean).
func (r *Registry) Lint() []string {
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		return []string{fmt.Sprintf("render: %v", err)}
	}
	return LintExposition(&buf)
}

// histSeries accumulates one histogram series' samples for ordering and
// cumulativity checks.
type histSeries struct {
	les        []string  // le values in encounter order
	counts     []float64 // cumulative bucket counts in encounter order
	sumSeen    bool
	countSeen  bool
	countValue float64
	badOrder   bool // a bucket arrived after _sum/_count
}

// LintExposition checks one rendered exposition document.
func LintExposition(r io.Reader) []string {
	var probs []string
	addf := func(format string, args ...any) { probs = append(probs, fmt.Sprintf(format, args...)) }

	types := map[string]string{}      // family → type
	helpSeen := map[string]bool{}     // family → HELP emitted
	sampleSeen := map[string]bool{}   // family → at least one sample line
	series := map[string]bool{}       // name+sorted-labels → seen
	hists := map[string]*histSeries{} // histogram family + base labels → state
	var histOrder []string

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, ok := parseComment(line)
			if !ok {
				addf("malformed comment line: %q", line)
				continue
			}
			switch kind {
			case "HELP":
				if helpSeen[name] {
					addf("metric %q: duplicate HELP", name)
				}
				if types[name] != "" {
					addf("metric %q: HELP after TYPE", name)
				}
				helpSeen[name] = true
			case "TYPE":
				typ := line[strings.LastIndex(line, " ")+1:]
				if types[name] != "" {
					addf("metric %q: duplicate TYPE", name)
				}
				if sampleSeen[name] {
					addf("metric %q: TYPE after samples", name)
				}
				types[name] = typ
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					addf("metric %q: unknown type %q", name, typ)
				}
				if !metricNameRE.MatchString(name) {
					addf("metric name %q invalid", name)
				}
				switch {
				case typ == "counter" && !strings.HasSuffix(name, "_total"):
					addf("counter %q should have the _total suffix", name)
				case typ != "counter" && strings.HasSuffix(name, "_total"):
					addf("non-counter %q must not have the _total suffix", name)
				}
				for _, suffix := range []string{"_bucket", "_sum", "_count"} {
					if strings.HasSuffix(name, suffix) {
						addf("metric %q uses reserved suffix %s", name, suffix)
					}
				}
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			addf("%v", err)
			continue
		}
		fam, sub := baseFamily(name, types)
		if types[fam] == "" {
			addf("sample %q has no TYPE declaration", name)
			continue
		}
		sampleSeen[fam] = true
		if types[fam] == "histogram" != (sub != "") {
			if sub != "" {
				addf("series %q: %s sample on non-histogram family %q", name, sub, fam)
			} else {
				addf("histogram %q: bare sample without _bucket/_sum/_count", fam)
			}
			continue
		}

		var le string
		var rest []string
		for _, l := range labels {
			k := l[:strings.Index(l, "=")]
			if !labelNameRE.MatchString(k) || strings.HasPrefix(k, "__") {
				addf("series %q: invalid label name %q", name, k)
			}
			if k == "le" && sub == "_bucket" {
				le = l[strings.Index(l, "=")+2 : len(l)-1]
				continue
			}
			if k == "le" {
				addf("series %q: reserved label \"le\" outside histogram buckets", name)
			}
			rest = append(rest, l)
		}
		sort.Strings(rest)
		key := name + "{" + strings.Join(rest, ",") + "}"
		if sub == "_bucket" {
			key += `{le=` + le + `}`
		}
		if series[key] {
			addf("duplicate series %s", key)
		}
		series[key] = true

		if types[fam] == "histogram" {
			hkey := fam + "{" + strings.Join(rest, ",") + "}"
			h := hists[hkey]
			if h == nil {
				h = &histSeries{}
				hists[hkey] = h
				histOrder = append(histOrder, hkey)
			}
			switch sub {
			case "_bucket":
				if le == "" {
					addf("series %q: bucket without le label", name)
				}
				if h.sumSeen || h.countSeen {
					h.badOrder = true
				}
				h.les = append(h.les, le)
				h.counts = append(h.counts, value)
			case "_sum":
				h.sumSeen = true
			case "_count":
				if !h.sumSeen {
					h.badOrder = true
				}
				h.countSeen = true
				h.countValue = value
			}
		}
	}
	if err := sc.Err(); err != nil {
		addf("read: %v", err)
	}

	for _, hkey := range histOrder {
		h := hists[hkey]
		if h.badOrder {
			addf("histogram %s: samples out of order (want buckets, _sum, _count)", hkey)
		}
		if !h.sumSeen || !h.countSeen {
			addf("histogram %s: missing _sum or _count", hkey)
		}
		if len(h.les) == 0 || h.les[len(h.les)-1] != "+Inf" {
			addf("histogram %s: missing or misplaced +Inf bucket", hkey)
			continue
		}
		prev := -1.0
		prevLe := ""
		for i, le := range h.les {
			bound, err := parseLe(le)
			if err != nil {
				addf("histogram %s: bad le %q", hkey, le)
				continue
			}
			if i > 0 {
				if pb, _ := parseLe(prevLe); bound <= pb {
					addf("histogram %s: le %q not above %q", hkey, le, prevLe)
				}
			}
			if h.counts[i] < prev {
				addf("histogram %s: bucket counts not cumulative at le=%q", hkey, le)
			}
			prev = h.counts[i]
			prevLe = le
		}
		if h.countSeen && h.countValue != h.counts[len(h.counts)-1] {
			addf("histogram %s: _count %v != +Inf bucket %v", hkey, h.countValue, h.counts[len(h.counts)-1])
		}
	}
	return probs
}

func parseComment(line string) (kind, name string, ok bool) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", false
	}
	if fields[1] != "HELP" && fields[1] != "TYPE" {
		return "", "", false
	}
	return fields[1], fields[2], true
}

// parseSample splits `name{labels} value` into parts; labels come back
// as raw `k="v"` strings.
func parseSample(line string) (name string, labels []string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		rest = rest[i+1:]
		for {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 || eq+1 >= len(rest) || rest[eq+1] != '"' {
				return "", nil, 0, fmt.Errorf("malformed labels in %q", line)
			}
			// Scan the quoted value honoring backslash escapes.
			j := eq + 2
			for j < len(rest) {
				if rest[j] == '\\' {
					j += 2
					continue
				}
				if rest[j] == '"' {
					break
				}
				j++
			}
			if j >= len(rest) {
				return "", nil, 0, fmt.Errorf("unterminated label value in %q", line)
			}
			labels = append(labels, rest[:j+1])
			rest = rest[j+1:]
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			return "", nil, 0, fmt.Errorf("malformed label block in %q", line)
		}
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return "", nil, 0, fmt.Errorf("missing value in %q", line)
		}
		name = rest[:sp]
		rest = rest[sp:]
	}
	rest = strings.TrimPrefix(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional timestamp
		return "", nil, 0, fmt.Errorf("malformed value in %q", line)
	}
	value, err = parseLe(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("unparseable value %q in %q", fields[0], line)
	}
	if !metricNameRE.MatchString(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	return name, labels, value, nil
}

func parseLe(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// baseFamily maps a sample name to its declared family: histogram
// sub-series (_bucket/_sum/_count) fold into the base family when one
// is declared as a histogram.
func baseFamily(name string, types map[string]string) (fam, sub string) {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suffix) {
			base := strings.TrimSuffix(name, suffix)
			if types[base] == "histogram" || types[base] == "summary" {
				return base, suffix
			}
		}
	}
	return name, ""
}
