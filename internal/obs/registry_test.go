package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(2.5)
	c.Add(-10) // dropped: counters are monotone
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %g, want 3.5", got)
	}
	g := r.Gauge("in_flight", "in-flight")
	g.Set(4)
	g.Dec()
	g.Add(-0.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", got)
	}
}

func TestSeriesIdentityAcrossCalls(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits", "", L("path", "/x"), L("code", "200"))
	// Same labels in a different order address the same series.
	b := r.Counter("hits", "", L("code", "200"), L("path", "/x"))
	if a != b {
		t.Fatal("label order must not create a new series")
	}
	c := r.Counter("hits", "", L("path", "/y"), L("code", "200"))
	if a == c {
		t.Fatal("different labels must create a new series")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on counter/gauge name collision")
		}
	}()
	r.Gauge("m", "")
}

func TestConcurrentRegistryAccess(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("ops_total", "ops", L("worker", string(rune('a'+w%4)))).Inc()
				r.Gauge("depth", "").Set(float64(i))
				r.Histogram("lat", "", ExponentialBuckets(0.001, 2, 10)).Observe(float64(i) / 1000)
				if i%100 == 0 {
					_ = r.Snapshot()
					var sb strings.Builder
					if _, err := r.WriteTo(&sb); err != nil {
						t.Errorf("WriteTo: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	total := 0.0
	for _, s := range r.Snapshot() {
		if s.Name == "ops_total" {
			total += s.Value
		}
	}
	if want := float64(workers * iters); total != want {
		t.Fatalf("ops_total = %g, want %g", total, want)
	}
	if h := r.Histogram("lat", "", nil); h.Count() != workers*iters {
		t.Fatalf("hist count = %d, want %d", h.Count(), workers*iters)
	}
}

func TestSnapshotOrderStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_first", "")
	r.Counter("a_second", "")
	snaps := r.Snapshot()
	if len(snaps) != 2 || snaps[0].Name != "z_first" || snaps[1].Name != "a_second" {
		t.Fatalf("snapshot order = %+v", snaps)
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "").Inc()
	// Must not panic on repeat (expvar.Publish panics on duplicates).
	r.PublishExpvar("test_metrics")
	r.PublishExpvar("test_metrics")
}
