package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWriteToFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("rptcn_http_requests_total", "Total HTTP requests.", L("path", "/healthz"), L("code", "200")).Add(7)
	r.Gauge("rptcn_http_in_flight", "In-flight requests.").Set(2)
	var sb strings.Builder
	n, err := r.WriteTo(&sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if int64(len(out)) != n {
		t.Fatalf("WriteTo returned %d, wrote %d bytes", n, len(out))
	}
	wantLines := []string{
		"# HELP rptcn_http_requests_total Total HTTP requests.",
		"# TYPE rptcn_http_requests_total counter",
		`rptcn_http_requests_total{code="200",path="/healthz"} 7`,
		"# TYPE rptcn_http_in_flight gauge",
		"rptcn_http_in_flight 2",
	}
	for _, w := range wantLines {
		if !strings.Contains(out, w) {
			t.Fatalf("exposition missing %q:\n%s", w, out)
		}
	}
	// Labels must be sorted by key regardless of registration order.
	if strings.Contains(out, `{path=`) {
		t.Fatalf("labels not canonically sorted:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", L("msg", "a\"b\\c\nd")).Inc()
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `msg="a\"b\\c\nd"`) {
		t.Fatalf("label not escaped: %s", sb.String())
	}
}

func TestHandlerServesTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("up", "").Inc()
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "up 1") {
		t.Fatalf("body = %q", rec.Body.String())
	}
}

func TestLoggerTagsComponent(t *testing.T) {
	var sb strings.Builder
	SetLogger(NewLogger(&sb, 0))
	defer SetLogger(nil)
	Logger("train").Info("epoch done", "epoch", 3)
	out := sb.String()
	if !strings.Contains(out, "component=train") || !strings.Contains(out, "epoch=3") {
		t.Fatalf("log line = %q", out)
	}
}
