package obs

import (
	"io"
	"math"
	"sync"
	"testing"
)

// TestQuantileEmptyHistogram pins the empty-histogram contract: every
// quantile (including the boundaries) is NaN, never 0 or a bucket bound.
func TestQuantileEmptyHistogram(t *testing.T) {
	h := NewHistogram(ExponentialBuckets(0.001, 2, 10))
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if !math.IsNaN(h.Quantile(q)) {
			t.Errorf("empty histogram Quantile(%g) = %g, want NaN", q, h.Quantile(q))
		}
	}
	if !math.IsNaN(h.Mean()) {
		t.Errorf("empty histogram Mean() = %g, want NaN", h.Mean())
	}
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("empty histogram count=%d sum=%g", h.Count(), h.Sum())
	}
}

// TestQuantileSingleObservation: with one sample, min == max, so the
// min/max clamp must make every quantile exactly the observed value —
// regardless of how wide the containing bucket is.
func TestQuantileSingleObservation(t *testing.T) {
	for _, v := range []float64{0.0017, 1, 999} { // mid-bucket, boundary, +Inf overflow
		h := NewHistogram([]float64{0.001, 1, 100})
		h.Observe(v)
		for _, q := range []float64{0, 0.25, 0.5, 0.999, 1} {
			if got := h.Quantile(q); got != v {
				t.Errorf("Observe(%g): Quantile(%g) = %g, want exactly %g", v, q, got, v)
			}
		}
	}
}

// TestHistogramConcurrentObserveSnapshot hammers Observe from several
// goroutines while snapshots, expositions, and quantiles are read
// concurrently. Run under -race this checks the lock discipline; the
// final totals check that no observation was lost.
func TestHistogramConcurrentObserveSnapshot(t *testing.T) {
	r := NewRegistry()
	const (
		writers = 8
		perG    = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := r.Histogram("concurrent_seconds", "t", ExponentialBuckets(1e-6, 4, 12))
			for i := 0; i < perG; i++ {
				h.Observe(float64(i%100) * 1e-4)
			}
		}(g)
	}
	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		h := r.Histogram("concurrent_seconds", "t", nil)
		for i := 0; i < 200; i++ {
			snap := h.snapshotValue()
			// Cumulative bucket counts must be monotone at every instant.
			var prev uint64
			for _, b := range snap.Buckets {
				if b.Count < prev {
					t.Errorf("non-monotone cumulative buckets: %d after %d", b.Count, prev)
					return
				}
				prev = b.Count
			}
			h.Quantile(0.5)
			_, _ = r.WriteTo(io.Discard)
			r.Snapshot()
		}
	}()
	wg.Wait()
	<-readDone
	h := r.Histogram("concurrent_seconds", "t", nil)
	if got := h.Count(); got != writers*perG {
		t.Fatalf("count = %d, want %d", got, writers*perG)
	}
	snap := h.snapshotValue()
	if last := snap.Buckets[len(snap.Buckets)-1]; last.Count != writers*perG {
		t.Fatalf("+Inf bucket = %d, want %d", last.Count, writers*perG)
	}
}
