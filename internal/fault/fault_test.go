package fault

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

func TestDisabledInjectorIsInert(t *testing.T) {
	Deactivate()
	if err := Error("x"); err != nil {
		t.Fatalf("disabled Error = %v", err)
	}
	if v := NaN("x", 1.5); v != 1.5 {
		t.Fatalf("disabled NaN = %v", v)
	}
	data := []float64{1, 2}
	Corrupt("x", data)
	if data[0] != 1 {
		t.Fatalf("disabled Corrupt mutated data: %v", data)
	}
	Disrupt("x") // must not panic
}

func TestErrorRuleFiresDeterministically(t *testing.T) {
	inj := NewInjector(Rule{Scope: "io", Kind: KindError, After: 2, Every: 3})
	defer Activate(inj)()

	var pattern []bool
	for i := 0; i < 10; i++ {
		pattern = append(pattern, Error("io") != nil)
	}
	// Skip 2 hits, then fire every 3rd eligible hit: indices 2, 5, 8.
	want := []bool{false, false, true, false, false, true, false, false, true, false}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("pattern[%d] = %v, want %v (full: %v)", i, pattern[i], want[i], pattern)
		}
	}
	if got := inj.Fired("io"); got != 3 {
		t.Fatalf("Fired = %d, want 3", got)
	}
	if got := inj.Probes("io"); got != 10 {
		t.Fatalf("Probes = %d, want 10", got)
	}
}

func TestErrorWrapsCustomError(t *testing.T) {
	sentinel := errors.New("disk on fire")
	inj := NewInjector(Rule{Scope: "io", Kind: KindError, Err: sentinel})
	defer Activate(inj)()
	if err := Error("io"); !errors.Is(err, sentinel) {
		t.Fatalf("Error = %v, want wrapped %v", err, sentinel)
	}
}

func TestTimesCapsFirings(t *testing.T) {
	inj := NewInjector(Rule{Scope: "io", Kind: KindError, Times: 2})
	defer Activate(inj)()
	fired := 0
	for i := 0; i < 10; i++ {
		if Error("io") != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, want 2", fired)
	}
	if got := inj.Fired("io"); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
}

func TestNaNAndCorrupt(t *testing.T) {
	inj := NewInjector(
		Rule{Scope: "loss", Kind: KindNaN, Times: 1},
		Rule{Scope: "act", Kind: KindNaN, Value: math.Inf(1), Times: 1},
	)
	defer Activate(inj)()
	if v := NaN("loss", 0.25); !math.IsNaN(v) {
		t.Fatalf("NaN rule returned %v", v)
	}
	if v := NaN("loss", 0.25); v != 0.25 {
		t.Fatalf("exhausted NaN rule returned %v", v)
	}
	data := []float64{1, 2, 3}
	Corrupt("act", data)
	if !math.IsInf(data[0], 1) || data[1] != 2 {
		t.Fatalf("Corrupt result = %v", data)
	}
}

func TestPanicRuleCarriesScope(t *testing.T) {
	inj := NewInjector(Rule{Scope: "fwd", Kind: KindPanic})
	defer Activate(inj)()
	defer func() {
		r := recover()
		p, ok := r.(*Panic)
		if !ok || p.Scope != "fwd" {
			t.Fatalf("recovered %v, want *Panic{fwd}", r)
		}
	}()
	Disrupt("fwd")
	t.Fatal("Disrupt did not panic")
}

func TestLatencyRuleSleeps(t *testing.T) {
	inj := NewInjector(Rule{Scope: "slow", Kind: KindLatency, Latency: 30 * time.Millisecond})
	defer Activate(inj)()
	start := time.Now()
	Disrupt("slow")
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("Disrupt returned after %v, want >= 30ms", d)
	}
}

func TestUnarmedScopeStillCountsProbes(t *testing.T) {
	inj := NewInjector()
	defer Activate(inj)()
	Disrupt("somewhere")
	if err := Error("somewhere"); err != nil {
		t.Fatal(err)
	}
	if got := inj.Probes("somewhere"); got != 2 {
		t.Fatalf("Probes = %d, want 2", got)
	}
	scopes := inj.Scopes()
	if len(scopes) != 1 || scopes[0] != "somewhere" {
		t.Fatalf("Scopes = %v", scopes)
	}
}

// TestConcurrentFiringIsExact: under concurrency, counter-based rules
// still fire exactly the armed number of times (chaos suites run -race).
func TestConcurrentFiringIsExact(t *testing.T) {
	inj := NewInjector(Rule{Scope: "c", Kind: KindError, Every: 10})
	defer Activate(inj)()
	const workers, per = 8, 125
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := 0
			for i := 0; i < per; i++ {
				if Error("c") != nil {
					local++
				}
			}
			mu.Lock()
			fired += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	if want := workers * per / 10; fired != want {
		t.Fatalf("fired %d, want %d", fired, want)
	}
}

func TestActivateReturnsDeactivator(t *testing.T) {
	inj := NewInjector(Rule{Scope: "x", Kind: KindError})
	off := Activate(inj)
	if Active() != inj {
		t.Fatal("Activate did not install injector")
	}
	off()
	if Active() != nil {
		t.Fatal("deactivator did not remove injector")
	}
}

// BenchmarkDisabledProbe pins the disabled-injector fast path: one
// atomic load, no allocation (the Fit benchmarks must not regress).
func BenchmarkDisabledProbe(b *testing.B) {
	Deactivate()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Error("train.batch.loss")
		_ = NaN("train.batch.loss", 1)
	}
}
