// Package fault is a deterministic, scope-tagged fault injector for
// chaos-testing the training and serving paths. Call sites register
// themselves implicitly by probing a scope ("train.batch.loss",
// "serve.infer", ...); tests arm an Injector with rules that fire at
// exact hit counts, so every injected NaN, panic, I/O error, or latency
// spike is reproducible run to run — no RNG, no wall-clock dependence.
//
// Zero overhead when disabled (the production default): every helper's
// fast path is a single atomic pointer load returning immediately, the
// same pattern obs/trace uses, so instrumented hot loops pay nothing.
//
// Usage in a test:
//
//	inj := fault.NewInjector(
//	    fault.Rule{Scope: "train.batch.loss", Kind: fault.KindNaN, After: 3, Times: 1},
//	    fault.Rule{Scope: "serve.infer", Kind: fault.KindPanic, Every: 5},
//	)
//	defer fault.Activate(inj)()
//	... drive the system; assert it survives ...
//	if inj.Fired("train.batch.loss") == 0 { t.Fatal("point never exercised") }
package fault

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Kind selects what an armed rule injects.
type Kind int

// The injectable fault kinds.
const (
	// KindError makes Error return the rule's Err.
	KindError Kind = iota
	// KindPanic makes any helper panic with a *Panic value.
	KindPanic
	// KindNaN makes NaN/Corrupt poison the probed value with Value.
	KindNaN
	// KindLatency makes any helper sleep for Latency.
	KindLatency
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindNaN:
		return "nan"
	case KindLatency:
		return "latency"
	}
	return "unknown"
}

// ErrInjected is the default error KindError rules return.
var ErrInjected = errors.New("fault: injected error")

// Panic is the value KindPanic rules panic with, so recovery layers can
// tell an injected panic from a real one in logs.
type Panic struct{ Scope string }

// Error implements error for convenient formatting after recover().
func (p *Panic) Error() string { return "fault: injected panic at " + p.Scope }

// Rule arms one fault at a scope. Firing is counter-based and therefore
// deterministic: the rule skips the first After hits of its scope, then
// fires on every Every-th eligible hit (default 1 = every hit), at most
// Times times (0 = unlimited).
type Rule struct {
	Scope string
	Kind  Kind
	After int
	Every int
	Times int
	// Err is returned by KindError rules (ErrInjected when nil).
	Err error
	// Latency is slept by KindLatency rules.
	Latency time.Duration
	// Value is what KindNaN rules poison with; use NaN (the constructor
	// helpers' default) or e.g. math.Inf(1) for an exploding activation.
	Value float64
}

// armedRule is a Rule with its per-rule hit/fire counters.
type armedRule struct {
	Rule
	hits  atomic.Int64
	fired atomic.Int64
}

// shouldFire advances the rule's hit counter and reports whether this
// hit fires. Atomic counters make the decision a pure function of the
// hit index, so concurrent probes under -race stay deterministic in
// aggregate (each hit index fires or not, regardless of interleaving).
func (r *armedRule) shouldFire() bool {
	n := r.hits.Add(1)
	if n <= int64(r.After) {
		return false
	}
	every := int64(r.Every)
	if every <= 0 {
		every = 1
	}
	if (n-int64(r.After)-1)%every != 0 {
		return false
	}
	if r.Times > 0 && r.fired.Add(1) > int64(r.Times) {
		return false
	}
	if r.Times <= 0 {
		r.fired.Add(1)
	}
	return true
}

// Injector holds armed rules, indexed by scope. Construct with
// NewInjector and install with Activate; a nil or inactive injector
// costs call sites one atomic load.
type Injector struct {
	mu    sync.Mutex
	rules map[string][]*armedRule
	// probes counts every probe per scope (armed or not is irrelevant
	// once the injector is active), so chaos suites can assert that each
	// registered point was actually exercised.
	probes sync.Map // string -> *atomic.Int64
}

// NewInjector arms the given rules.
func NewInjector(rules ...Rule) *Injector {
	inj := &Injector{rules: map[string][]*armedRule{}}
	for _, r := range rules {
		if r.Kind == KindNaN && r.Value == 0 {
			r.Value = math.NaN()
		}
		if r.Kind == KindError && r.Err == nil {
			r.Err = ErrInjected
		}
		inj.rules[r.Scope] = append(inj.rules[r.Scope], &armedRule{Rule: r})
	}
	return inj
}

// Fired returns how many times any rule at scope has fired.
func (inj *Injector) Fired(scope string) int64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	var n int64
	for _, r := range inj.rules[scope] {
		f := r.fired.Load()
		if r.Times > 0 && f > int64(r.Times) {
			f = int64(r.Times)
		}
		n += f
	}
	return n
}

// Probes returns how many times the scope was probed while this
// injector was active — the proof a registered point is actually wired
// into the code path a chaos test drives.
func (inj *Injector) Probes(scope string) int64 {
	if c, ok := inj.probes.Load(scope); ok {
		return c.(*atomic.Int64).Load()
	}
	return 0
}

// Scopes lists every scope probed while the injector was active.
func (inj *Injector) Scopes() []string {
	var out []string
	inj.probes.Range(func(k, _ any) bool {
		out = append(out, k.(string))
		return true
	})
	return out
}

func (inj *Injector) countProbe(scope string) {
	c, ok := inj.probes.Load(scope)
	if !ok {
		c, _ = inj.probes.LoadOrStore(scope, new(atomic.Int64))
	}
	c.(*atomic.Int64).Add(1)
}

// match returns the armed rules at scope whose kind passes keep.
func (inj *Injector) match(scope string, keep func(Kind) bool) []*armedRule {
	inj.countProbe(scope)
	var out []*armedRule
	for _, r := range inj.rules[scope] {
		if keep(r.Kind) {
			out = append(out, r)
		}
	}
	return out
}

// active is the process-wide injector; nil means disabled, making every
// helper's fast path one atomic load.
var active atomic.Pointer[Injector]

// Activate installs inj as the process-wide injector and returns a
// function that removes it (handy with defer in tests). Activating nil
// disables injection.
func Activate(inj *Injector) func() {
	active.Store(inj)
	return func() { active.CompareAndSwap(inj, nil) }
}

// Deactivate removes any active injector.
func Deactivate() { active.Store(nil) }

// Active returns the installed injector, or nil.
func Active() *Injector { return active.Load() }

// fire executes one rule's side effect and reports the error to return
// (non-nil only for KindError).
func fire(r *armedRule) error {
	switch r.Kind {
	case KindLatency:
		time.Sleep(r.Latency)
	case KindPanic:
		panic(&Panic{Scope: r.Scope})
	case KindError:
		return fmt.Errorf("%s: %w", r.Scope, r.Err)
	}
	return nil
}

// Error probes scope for error, panic, and latency rules. It returns
// the injected error (which call sites propagate like a real I/O
// failure), panics, or sleeps; nil when nothing fires.
func Error(scope string) error {
	inj := active.Load()
	if inj == nil {
		return nil
	}
	for _, r := range inj.match(scope, func(k Kind) bool { return k != KindNaN }) {
		if r.shouldFire() {
			if err := fire(r); err != nil {
				return err
			}
		}
	}
	return nil
}

// Disrupt probes scope for panic and latency rules — the helper for
// call sites that cannot surface an error (e.g. a Layer.Forward).
func Disrupt(scope string) {
	inj := active.Load()
	if inj == nil {
		return
	}
	for _, r := range inj.match(scope, func(k Kind) bool { return k == KindPanic || k == KindLatency }) {
		if r.shouldFire() {
			fire(r) //nolint:errcheck // only panic/latency kinds matched
		}
	}
}

// NaN probes scope for NaN rules and returns v, poisoned with the
// rule's value when one fires.
func NaN(scope string, v float64) float64 {
	inj := active.Load()
	if inj == nil {
		return v
	}
	for _, r := range inj.match(scope, func(k Kind) bool { return k == KindNaN }) {
		if r.shouldFire() {
			v = r.Value
		}
	}
	return v
}

// Corrupt probes scope for NaN rules and, when one fires, poisons the
// first element of data with the rule's value — an injected bad
// activation that a divergence guard must catch downstream.
func Corrupt(scope string, data []float64) {
	inj := active.Load()
	if inj == nil {
		return
	}
	for _, r := range inj.match(scope, func(k Kind) bool { return k == KindNaN }) {
		if r.shouldFire() && len(data) > 0 {
			data[0] = r.Value
		}
	}
}

// Corrupt32 is Corrupt for float32 activations (the f32 serving tier
// visits the same fault points as the f64 path).
func Corrupt32(scope string, data []float32) {
	inj := active.Load()
	if inj == nil {
		return
	}
	for _, r := range inj.match(scope, func(k Kind) bool { return k == KindNaN }) {
		if r.shouldFire() && len(data) > 0 {
			data[0] = float32(r.Value)
		}
	}
}
