package nn

import (
	"testing"

	"repro/internal/tensor"
)

func TestReverseTimeValues(t *testing.T) {
	x := tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6}, 1, 2, 3)
	y := ReverseTime{}.Forward(x, false)
	if y.At(0, 0, 0) != 3 || y.At(0, 0, 2) != 1 || y.At(0, 1, 0) != 6 {
		t.Fatalf("ReverseTime = %v", y.Data)
	}
}

func TestReverseTimeInvolution(t *testing.T) {
	r := tensor.NewRNG(1)
	x := tensor.RandN(r, 2, 3, 5)
	y := ReverseTime{}.Forward(ReverseTime{}.Forward(x, false), false)
	if !y.Equal(x, 0) {
		t.Fatal("double reversal must be the identity")
	}
}

func TestReverseTimeGradients(t *testing.T) {
	r := tensor.NewRNG(2)
	x := tensor.RandN(r, 2, 2, 4)
	err, detail := GradCheck(ReverseTime{}, x, 3, 1e-6)
	if err > 1e-8 {
		t.Fatalf("ReverseTime gradient check failed: relerr=%g at %s", err, detail)
	}
}

func TestConcat2DAndSplitGrad2D(t *testing.T) {
	a := tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := tensor.FromSlice([]float64{5, 6, 7, 8, 9, 10}, 2, 3)
	c := Concat2D(a, b)
	if c.Dim(1) != 5 || c.At(0, 0) != 1 || c.At(0, 2) != 5 || c.At(1, 4) != 10 {
		t.Fatalf("Concat2D = %v", c.Data)
	}
	ga, gb := SplitGrad2D(c, 2)
	if !ga.Equal(a, 0) || !gb.Equal(b, 0) {
		t.Fatal("SplitGrad2D does not invert Concat2D")
	}
}

func TestConcat2DMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Concat2D(tensor.New(2, 2), tensor.New(3, 2))
}
