package nn

import (
	"fmt"
	"math"
	"time"

	"repro/internal/tensor"
)

// This file holds the grad-free arena forward path (InferForward) for
// every layer the RPTCN/LSTM/CNN-LSTM models use. Each implementation
// repeats the exact arithmetic of its layer's Forward — same kernels,
// same floating-point evaluation order — but draws every intermediate
// from the InferArena and writes none of the training caches, so a
// warmed-up pass allocates nothing on the heap.

// InferForward implements InferLayer.
func (d *Dense) InferForward(a *InferArena, x *tensor.Tensor) *tensor.Tensor {
	if x.Dims() != 2 {
		panic(fmt.Sprintf("nn: Dense requires [batch, features], got %v", x.Shape()))
	}
	out := a.Get(x.Dim(0), d.W.Value.Dim(0))
	x.MatMulTInto(d.W.Value, out)
	return out.AddRowVectorInPlace(d.B.Value)
}

// InferForward implements InferLayer.
func (c *CausalConv1D) InferForward(a *InferArena, x *tensor.Tensor) *tensor.Tensor {
	if x.Dims() != 3 {
		panic(fmt.Sprintf("nn: CausalConv1D requires [batch, channels, time], got %v", x.Shape()))
	}
	if x.Dim(1) != c.InChannels {
		panic(fmt.Sprintf("nn: CausalConv1D channel mismatch: input %d, layer %d", x.Dim(1), c.InChannels))
	}
	w := c.effectiveKernel()
	b, t := x.Dim(0), x.Dim(2)
	in, out, k := c.InChannels, c.OutChannels, c.KernelSize
	acol := a.Get(in*k, b*t)
	wt := a.Get(in*k, out)
	ycol := a.Get(b*t, out)
	y := a.Get(b, out, t)
	c.convGemm(x, w, acol, wt, ycol, y)
	return y
}

// InferForward implements InferLayer.
func (l *LSTM) InferForward(a *InferArena, x *tensor.Tensor) *tensor.Tensor {
	if x.Dims() != 3 {
		panic(fmt.Sprintf("nn: LSTM requires [batch, features, time], got %v", x.Shape()))
	}
	if x.Dim(1) != l.InFeatures {
		panic(fmt.Sprintf("nn: LSTM feature mismatch: input %d, layer %d", x.Dim(1), l.InFeatures))
	}
	b, T := x.Dim(0), x.Dim(2)
	H, F := l.Hidden, l.InFeatures
	xAll := a.Get(T*b, F)
	zAll := a.Get(T*b, 4*H)
	zh := a.Get(b, 4*H)
	hPrev, cPrev := a.Get(b, H), a.Get(b, H)
	hNext, cNext := a.Get(b, H), a.Get(b, H)
	var seq *tensor.Tensor
	if l.ReturnSequences {
		seq = a.Get(b, H, T)
	}

	gatherTimeMajor(xAll, x, b, F, T)
	xAll.MatMulTInto(l.Wx.Value, zAll)
	hPrev.Zero()
	cPrev.Zero()

	bias := l.B.Value.Data
	for t := 0; t < T; t++ {
		hPrev.MatMulTInto(l.Wh.Value, zh)
		base := t * b
		for bi := 0; bi < b; bi++ {
			zrow := zAll.Data[(base+bi)*4*H : (base+bi+1)*4*H]
			zhrow := zh.Data[bi*4*H : (bi+1)*4*H]
			cPrevRow := cPrev.Data[bi*H : (bi+1)*H]
			cNewRow := cNext.Data[bi*H : (bi+1)*H]
			hNewRow := hNext.Data[bi*H : (bi+1)*H]
			for j := 0; j < H; j++ {
				iv := sigmoid(zrow[j] + zhrow[j] + bias[j])
				fv := sigmoid(zrow[H+j] + zhrow[H+j] + bias[H+j])
				gv := math.Tanh(zrow[2*H+j] + zhrow[2*H+j] + bias[2*H+j])
				ov := sigmoid(zrow[3*H+j] + zhrow[3*H+j] + bias[3*H+j])
				cv := fv*cPrevRow[j] + iv*gv
				cNewRow[j] = cv
				tc := math.Tanh(cv)
				hNewRow[j] = ov * tc
			}
			if seq != nil {
				for j := 0; j < H; j++ {
					seq.Data[(bi*H+j)*T+t] = hNewRow[j]
				}
			}
		}
		hPrev, hNext = hNext, hPrev
		cPrev, cNext = cNext, cPrev
	}
	if seq != nil {
		return seq
	}
	return hPrev // holds h_T after the final swap
}

// InferForward implements InferLayer.
func (l *GRU) InferForward(a *InferArena, x *tensor.Tensor) *tensor.Tensor {
	if x.Dims() != 3 {
		panic(fmt.Sprintf("nn: GRU requires [batch, features, time], got %v", x.Shape()))
	}
	if x.Dim(1) != l.InFeatures {
		panic(fmt.Sprintf("nn: GRU feature mismatch: input %d, layer %d", x.Dim(1), l.InFeatures))
	}
	b, T := x.Dim(0), x.Dim(2)
	H, F := l.Hidden, l.InFeatures
	xAll := a.Get(T*b, F)
	zxAll := a.Get(T*b, 3*H)
	zhRZ := a.Get(b, 2*H)
	zhC := a.Get(b, H)
	rh := a.Get(b, H)
	zg := a.Get(b, H)
	hPrev, hNext := a.Get(b, H), a.Get(b, H)
	var seq *tensor.Tensor
	if l.ReturnSequences {
		seq = a.Get(b, H, T)
	}

	gatherTimeMajor(xAll, x, b, F, T)
	xAll.MatMulTInto(l.Wx.Value, zxAll)
	hPrev.Zero()

	if l.inferWRZ == nil {
		l.inferWRZ = whRZ(l.Wh.Value, H)
		l.inferWC = whC(l.Wh.Value, H)
	}
	bias := l.B.Value.Data
	for t := 0; t < T; t++ {
		hPrev.MatMulTInto(l.inferWRZ, zhRZ)
		base := t * b
		for bi := 0; bi < b; bi++ {
			zxrow := zxAll.Data[(base+bi)*3*H : (base+bi+1)*3*H]
			zhrow := zhRZ.Data[bi*2*H : (bi+1)*2*H]
			hPrevRow := hPrev.Data[bi*H : (bi+1)*H]
			for j := 0; j < H; j++ {
				rv := sigmoid(zxrow[j] + zhrow[j] + bias[j])
				zv := sigmoid(zxrow[H+j] + zhrow[H+j] + bias[H+j])
				zg.Data[bi*H+j] = zv
				rh.Data[bi*H+j] = rv * hPrevRow[j]
			}
		}
		rh.MatMulTInto(l.inferWC, zhC)
		for bi := 0; bi < b; bi++ {
			zxrow := zxAll.Data[(base+bi)*3*H : (base+bi+1)*3*H]
			hPrevRow := hPrev.Data[bi*H : (bi+1)*H]
			hNewRow := hNext.Data[bi*H : (bi+1)*H]
			for j := 0; j < H; j++ {
				hc := math.Tanh(zxrow[2*H+j] + zhC.Data[bi*H+j] + bias[2*H+j])
				zv := zg.Data[bi*H+j]
				hNewRow[j] = (1-zv)*hPrevRow[j] + zv*hc
			}
			if seq != nil {
				for j := 0; j < H; j++ {
					seq.Data[(bi*H+j)*T+t] = hNewRow[j]
				}
			}
		}
		hPrev, hNext = hNext, hPrev
	}
	if seq != nil {
		return seq
	}
	return hPrev
}

// InferForward implements InferLayer.
func (f *FeatureAttention) InferForward(a *InferArena, x *tensor.Tensor) *tensor.Tensor {
	if x.Dims() != 2 {
		panic(fmt.Sprintf("nn: FeatureAttention requires [batch, features], got %v", x.Shape()))
	}
	scores := a.Get(x.Dim(0), f.W.Value.Dim(0))
	x.MatMulTInto(f.W.Value, scores)
	scores.AddRowVectorInPlace(f.B.Value)
	aw := a.GetLike(scores)
	softmaxRowsInto(scores, aw)
	out := a.GetLike(x)
	for i, v := range aw.Data {
		out.Data[i] = v * x.Data[i]
	}
	return out
}

// InferForward implements InferLayer.
func (r *ReLU) InferForward(a *InferArena, x *tensor.Tensor) *tensor.Tensor {
	out := a.GetLike(x)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		} else {
			out.Data[i] = 0
		}
	}
	return out
}

// InferForward implements InferLayer.
func (t *Tanh) InferForward(a *InferArena, x *tensor.Tensor) *tensor.Tensor {
	out := a.GetLike(x)
	for i, v := range x.Data {
		out.Data[i] = math.Tanh(v)
	}
	return out
}

// InferForward implements InferLayer.
func (s *Sigmoid) InferForward(a *InferArena, x *tensor.Tensor) *tensor.Tensor {
	out := a.GetLike(x)
	for i, v := range x.Data {
		out.Data[i] = sigmoid(v)
	}
	return out
}

// InferForward implements InferLayer. Inference-mode dropout is the
// identity; the input passes through untouched and the training mask is
// left alone.
func (d *Dropout) InferForward(_ *InferArena, x *tensor.Tensor) *tensor.Tensor {
	return x
}

// InferForward implements InferLayer.
func (d *SpatialDropout1D) InferForward(_ *InferArena, x *tensor.Tensor) *tensor.Tensor {
	if x.Dims() != 3 {
		panic(fmt.Sprintf("nn: SpatialDropout1D requires [batch, channels, time], got %v", x.Shape()))
	}
	return x
}

// InferForward implements InferLayer.
func (l *LastStep) InferForward(a *InferArena, x *tensor.Tensor) *tensor.Tensor {
	if x.Dims() != 3 {
		panic(fmt.Sprintf("nn: LastStep requires [batch, channels, time], got %v", x.Shape()))
	}
	b, c, t := x.Dim(0), x.Dim(1), x.Dim(2)
	out := a.Get(b, c)
	for i := 0; i < b; i++ {
		for j := 0; j < c; j++ {
			out.Data[i*c+j] = x.Data[(i*c+j)*t+t-1]
		}
	}
	return out
}

// InferForward implements InferLayer. Unlike Forward's Reshape (which
// shares storage with x), the arena path copies into its own slot so the
// result does not alias an input the caller may reuse.
func (f *Flatten) InferForward(a *InferArena, x *tensor.Tensor) *tensor.Tensor {
	batch := x.Dim(0)
	rest := 1
	for i := 1; i < x.Dims(); i++ {
		rest *= x.Dim(i)
	}
	out := a.Get(batch, rest)
	copy(out.Data, x.Data)
	return out
}

// InferForward implements InferLayer.
func (s *Sequential) InferForward(a *InferArena, x *tensor.Tensor) *tensor.Tensor {
	for _, l := range s.Layers {
		x = Infer(l, a, x)
	}
	return x
}

// InferForward implements InferLayer.
func (b *TemporalBlock) InferForward(a *InferArena, x *tensor.Tensor) *tensor.Tensor {
	h := b.conv1.InferForward(a, x)
	h = b.relu1.InferForward(a, h)
	h = b.drop1.InferForward(a, h)
	h = b.conv2.InferForward(a, h)
	h = b.relu2.InferForward(a, h)
	h = b.drop2.InferForward(a, h)
	res := x
	if b.downsample != nil {
		res = b.downsample.InferForward(a, x)
	}
	// Residual add fused with the final ReLU: same add-then-threshold
	// arithmetic as Forward's h.Add(res) followed by finalReLU.
	out := a.GetLike(h)
	for i, hv := range h.Data {
		v := hv + res.Data[i]
		if v > 0 {
			out.Data[i] = v
		} else {
			out.Data[i] = 0
		}
	}
	return out
}

// InferForward implements InferLayer.
func (t *TCN) InferForward(a *InferArena, x *tensor.Tensor) *tensor.Tensor {
	for _, b := range t.Blocks {
		x = b.InferForward(a, x)
	}
	return x
}

// InferForward implements InferLayer, timing the wrapped layer's arena
// forward into the same counters as training forwards.
func (w *Profiled) InferForward(a *InferArena, x *tensor.Tensor) *tensor.Tensor {
	t0 := time.Now()
	out := Infer(w.inner, a, x)
	w.times.fwdNanos.Add(int64(time.Since(t0)))
	w.times.fwdCalls.Add(1)
	return out
}
