package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// LSTM is a standard long short-term memory layer with full
// backpropagation through time. Input is [batch, features, time]. When
// ReturnSequences is true the output is [batch, hidden, time]; otherwise it
// is the final hidden state [batch, hidden].
//
// Gate order in the stacked weight matrices is (input, forget, cell,
// output). The forget-gate bias is initialized to 1, the usual trick to
// ease gradient flow early in training.
type LSTM struct {
	InFeatures      int
	Hidden          int
	ReturnSequences bool

	Wx *Param // [4H, F]
	Wh *Param // [4H, H]
	B  *Param // [4H]

	// Per-step caches for BPTT.
	xs          *tensor.Tensor   // input of last forward
	steps       []lstmStepCache  // one per time step
	hPrev0      *tensor.Tensor   // zero initial state (kept for shape)
	lastHiddens []*tensor.Tensor // h_t per step (for ReturnSequences grad routing)
}

type lstmStepCache struct {
	x, hPrev, cPrev *tensor.Tensor // inputs to the step
	i, f, g, o      *tensor.Tensor // gate activations
	c, tanhC        *tensor.Tensor // cell state and its tanh
}

// NewLSTM builds the layer with Xavier-uniform weights.
func NewLSTM(r *tensor.RNG, inFeatures, hidden int, returnSequences bool) *LSTM {
	l := &LSTM{
		InFeatures:      inFeatures,
		Hidden:          hidden,
		ReturnSequences: returnSequences,
		Wx:              NewParam("lstm.Wx", XavierUniform(r, inFeatures, hidden, 4*hidden, inFeatures)),
		Wh:              NewParam("lstm.Wh", XavierUniform(r, hidden, hidden, 4*hidden, hidden)),
		B:               NewParam("lstm.B", tensor.New(4*hidden)),
	}
	// Forget-gate bias = 1.
	for j := hidden; j < 2*hidden; j++ {
		l.B.Value.Data[j] = 1
	}
	return l
}

// stepInput extracts time slice t of [batch, features, time] as [batch, features].
func stepInput(x *tensor.Tensor, t int) *tensor.Tensor {
	b, f, tt := x.Dim(0), x.Dim(1), x.Dim(2)
	out := tensor.New(b, f)
	for bi := 0; bi < b; bi++ {
		for fi := 0; fi < f; fi++ {
			out.Data[bi*f+fi] = x.Data[(bi*f+fi)*tt+t]
		}
	}
	return out
}

// Forward implements Layer.
func (l *LSTM) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Dims() != 3 {
		panic(fmt.Sprintf("nn: LSTM requires [batch, features, time], got %v", x.Shape()))
	}
	if x.Dim(1) != l.InFeatures {
		panic(fmt.Sprintf("nn: LSTM feature mismatch: input %d, layer %d", x.Dim(1), l.InFeatures))
	}
	l.xs = x
	b, T := x.Dim(0), x.Dim(2)
	H := l.Hidden
	h := tensor.New(b, H)
	c := tensor.New(b, H)
	l.hPrev0 = h
	l.steps = l.steps[:0]
	l.lastHiddens = l.lastHiddens[:0]
	var seq *tensor.Tensor
	if l.ReturnSequences {
		seq = tensor.New(b, H, T)
	}
	for t := 0; t < T; t++ {
		xt := stepInput(x, t)
		z := xt.MatMulT(l.Wx.Value).AddInPlace(h.MatMulT(l.Wh.Value)).AddRowVector(l.B.Value)
		i := tensor.New(b, H)
		f := tensor.New(b, H)
		g := tensor.New(b, H)
		o := tensor.New(b, H)
		for bi := 0; bi < b; bi++ {
			zrow := z.Data[bi*4*H : (bi+1)*4*H]
			for j := 0; j < H; j++ {
				i.Data[bi*H+j] = sigmoid(zrow[j])
				f.Data[bi*H+j] = sigmoid(zrow[H+j])
				g.Data[bi*H+j] = math.Tanh(zrow[2*H+j])
				o.Data[bi*H+j] = sigmoid(zrow[3*H+j])
			}
		}
		cNew := f.Mul(c).AddInPlace(i.Mul(g))
		tanhC := cNew.Apply(math.Tanh)
		hNew := o.Mul(tanhC)
		l.steps = append(l.steps, lstmStepCache{
			x: xt, hPrev: h, cPrev: c,
			i: i, f: f, g: g, o: o,
			c: cNew, tanhC: tanhC,
		})
		h, c = hNew, cNew
		l.lastHiddens = append(l.lastHiddens, h)
		if l.ReturnSequences {
			for bi := 0; bi < b; bi++ {
				for j := 0; j < H; j++ {
					seq.Data[(bi*H+j)*T+t] = h.Data[bi*H+j]
				}
			}
		}
	}
	if l.ReturnSequences {
		return seq
	}
	return h
}

// Backward implements Layer.
func (l *LSTM) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := l.xs
	b, T := x.Dim(0), x.Dim(2)
	H, F := l.Hidden, l.InFeatures
	dx := tensor.New(b, F, T)
	dh := tensor.New(b, H)
	dc := tensor.New(b, H)

	stepGrad := func(t int) *tensor.Tensor {
		if !l.ReturnSequences {
			if t == T-1 {
				return grad
			}
			return nil
		}
		g := tensor.New(b, H)
		for bi := 0; bi < b; bi++ {
			for j := 0; j < H; j++ {
				g.Data[bi*H+j] = grad.Data[(bi*H+j)*T+t]
			}
		}
		return g
	}

	for t := T - 1; t >= 0; t-- {
		if sg := stepGrad(t); sg != nil {
			dh.AddInPlace(sg)
		}
		st := l.steps[t]
		// Through h = o ⊙ tanh(c).
		do := dh.Mul(st.tanhC)
		dtanh := dh.Mul(st.o)
		for k := range dtanh.Data {
			tc := st.tanhC.Data[k]
			dc.Data[k] += dtanh.Data[k] * (1 - tc*tc)
		}
		di := dc.Mul(st.g)
		dg := dc.Mul(st.i)
		df := dc.Mul(st.cPrev)
		dcPrev := dc.Mul(st.f)
		// Gate pre-activation gradients, stacked as [B, 4H].
		dz := tensor.New(b, 4*H)
		for bi := 0; bi < b; bi++ {
			for j := 0; j < H; j++ {
				iv := st.i.Data[bi*H+j]
				fv := st.f.Data[bi*H+j]
				gv := st.g.Data[bi*H+j]
				ov := st.o.Data[bi*H+j]
				dz.Data[bi*4*H+j] = di.Data[bi*H+j] * iv * (1 - iv)
				dz.Data[bi*4*H+H+j] = df.Data[bi*H+j] * fv * (1 - fv)
				dz.Data[bi*4*H+2*H+j] = dg.Data[bi*H+j] * (1 - gv*gv)
				dz.Data[bi*4*H+3*H+j] = do.Data[bi*H+j] * ov * (1 - ov)
			}
		}
		l.Wx.Grad.AddInPlace(dz.TMatMul(st.x))
		l.Wh.Grad.AddInPlace(dz.TMatMul(st.hPrev))
		l.B.Grad.AddInPlace(dz.SumRows())
		dxT := dz.MatMul(l.Wx.Value) // [B, F]
		for bi := 0; bi < b; bi++ {
			for fi := 0; fi < F; fi++ {
				dx.Data[(bi*F+fi)*T+t] = dxT.Data[bi*F+fi]
			}
		}
		dh = dz.MatMul(l.Wh.Value) // gradient to h_{t−1}
		dc = dcPrev
	}
	return dx
}

// Params implements Layer.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }
