package nn

import (
	"fmt"
	"math"

	"repro/internal/par"
	"repro/internal/tensor"
)

// LSTM is a standard long short-term memory layer with full
// backpropagation through time. Input is [batch, features, time]. When
// ReturnSequences is true the output is [batch, hidden, time]; otherwise it
// is the final hidden state [batch, hidden].
//
// Gate order in the stacked weight matrices is (input, forget, cell,
// output). The forget-gate bias is initialized to 1, the usual trick to
// ease gradient flow early in training.
//
// Instead of T small sequential matmuls, the input projection X·Wxᵀ for
// every timestep is computed as one large parallel matmul up front (and
// likewise dWx/dx as single matmuls over the stacked per-step gradients in
// the backward pass); only the h·Whᵀ recurrence remains per-step. All
// per-step state lives in contiguous scratch buffers reused across calls,
// so a steady-state training step allocates only its outputs.
type LSTM struct {
	InFeatures      int
	Hidden          int
	ReturnSequences bool

	Wx *Param // [4H, F]
	Wh *Param // [4H, H]
	B  *Param // [4H]

	s lstmScratch

	// Float32 weight mirrors for the f32 serving tier (see infer32.go).
	wx32, wh32, b32 *tensor.Tensor32
}

// lstmScratch holds the forward caches and backward workspaces, laid out
// t-major so step t is the contiguous row block [t*B, (t+1)*B).
type lstmScratch struct {
	b, t int // shape the buffers were sized for

	xAll  *tensor.Tensor // [T*B, F] input, time-major
	zAll  *tensor.Tensor // [T*B, 4H] pre-activations (x-side, then +h-side)
	hAll  *tensor.Tensor // [(T+1)*B, H]; block 0 is h_{-1}=0, block t+1 is h_t
	cAll  *tensor.Tensor // [(T+1)*B, H]; same layout for the cell state
	tanhC *tensor.Tensor // [T*B, H]
	gi    *tensor.Tensor // [T*B, H] input gate
	gf    *tensor.Tensor // [T*B, H] forget gate
	gg    *tensor.Tensor // [T*B, H] candidate
	go_   *tensor.Tensor // [T*B, H] output gate
	zh    *tensor.Tensor // [B, 4H] per-step recurrent projection

	hPrevView []*tensor.Tensor // [B,H] views of hAll blocks 0..T-1

	// Backward workspaces.
	dzAll  *tensor.Tensor   // [T*B, 4H]
	dh     *tensor.Tensor   // [B, H]
	dc     *tensor.Tensor   // [B, H]
	dcPrev *tensor.Tensor   // [B, H]
	dxAll  *tensor.Tensor   // [T*B, F]
	dzView []*tensor.Tensor // [B,4H] views of dzAll blocks
}

func (s *lstmScratch) ensure(b, t, f, h int) {
	if s.b == b && s.t == t && s.xAll != nil {
		return
	}
	s.b, s.t = b, t
	s.xAll = tensor.New(t*b, f)
	s.zAll = tensor.New(t*b, 4*h)
	s.hAll = tensor.New((t+1)*b, h)
	s.cAll = tensor.New((t+1)*b, h)
	s.tanhC = tensor.New(t*b, h)
	s.gi = tensor.New(t*b, h)
	s.gf = tensor.New(t*b, h)
	s.gg = tensor.New(t*b, h)
	s.go_ = tensor.New(t*b, h)
	s.zh = tensor.New(b, 4*h)
	s.dzAll = tensor.New(t*b, 4*h)
	s.dh = tensor.New(b, h)
	s.dc = tensor.New(b, h)
	s.dcPrev = tensor.New(b, h)
	s.dxAll = tensor.New(t*b, f)
	s.hPrevView = make([]*tensor.Tensor, t)
	s.dzView = make([]*tensor.Tensor, t)
	for step := 0; step < t; step++ {
		s.hPrevView[step] = tensor.FromSlice(s.hAll.Data[step*b*h:(step+1)*b*h], b, h)
		s.dzView[step] = tensor.FromSlice(s.dzAll.Data[step*b*4*h:(step+1)*b*4*h], b, 4*h)
	}
}

// NewLSTM builds the layer with Xavier-uniform weights.
func NewLSTM(r *tensor.RNG, inFeatures, hidden int, returnSequences bool) *LSTM {
	l := &LSTM{
		InFeatures:      inFeatures,
		Hidden:          hidden,
		ReturnSequences: returnSequences,
		Wx:              NewParam("lstm.Wx", XavierUniform(r, inFeatures, hidden, 4*hidden, inFeatures)),
		Wh:              NewParam("lstm.Wh", XavierUniform(r, hidden, hidden, 4*hidden, hidden)),
		B:               NewParam("lstm.B", tensor.New(4*hidden)),
	}
	// Forget-gate bias = 1.
	for j := hidden; j < 2*hidden; j++ {
		l.B.Value.Data[j] = 1
	}
	return l
}

// gatherTimeMajor fills dst [T*B, F] (time-major) from x [B, F, T]. The
// range body lives in a named function so the small-size inline path
// allocates no closure.
func gatherTimeMajor(dst, x *tensor.Tensor, b, f, t int) {
	if t*b*f < parFlops {
		gatherTimeMajorRange(dst, x, b, f, t, 0, t*b)
		return
	}
	par.Run(t*b, func(lo, hi int) { gatherTimeMajorRange(dst, x, b, f, t, lo, hi) })
}

func gatherTimeMajorRange(dst, x *tensor.Tensor, b, f, t, lo, hi int) {
	for r := lo; r < hi; r++ {
		tt, bi := r/b, r%b
		row := dst.Data[r*f : (r+1)*f]
		for fi := 0; fi < f; fi++ {
			row[fi] = x.Data[(bi*f+fi)*t+tt]
		}
	}
}

// Forward implements Layer.
func (l *LSTM) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Dims() != 3 {
		panic(fmt.Sprintf("nn: LSTM requires [batch, features, time], got %v", x.Shape()))
	}
	if x.Dim(1) != l.InFeatures {
		panic(fmt.Sprintf("nn: LSTM feature mismatch: input %d, layer %d", x.Dim(1), l.InFeatures))
	}
	b, T := x.Dim(0), x.Dim(2)
	H, F := l.Hidden, l.InFeatures
	s := &l.s
	s.ensure(b, T, F, H)

	gatherTimeMajor(s.xAll, x, b, F, T)
	// The whole input projection in one parallel matmul.
	s.xAll.MatMulTInto(l.Wx.Value, s.zAll)

	// h_{-1} = c_{-1} = 0.
	for i := 0; i < b*H; i++ {
		s.hAll.Data[i] = 0
		s.cAll.Data[i] = 0
	}

	bias := l.B.Value.Data
	for t := 0; t < T; t++ {
		hPrev := s.hPrevView[t]
		hPrev.MatMulTInto(l.Wh.Value, s.zh)
		base := t * b // row offset of step t in the T*B-major buffers
		step := func(lo, hi int) {
			for bi := lo; bi < hi; bi++ {
				zrow := s.zAll.Data[(base+bi)*4*H : (base+bi+1)*4*H]
				zhrow := s.zh.Data[bi*4*H : (bi+1)*4*H]
				off := (base + bi) * H
				cPrev := s.cAll.Data[t*b*H+bi*H : t*b*H+(bi+1)*H]
				cNew := s.cAll.Data[(t+1)*b*H+bi*H : (t+1)*b*H+(bi+1)*H]
				hNew := s.hAll.Data[(t+1)*b*H+bi*H : (t+1)*b*H+(bi+1)*H]
				for j := 0; j < H; j++ {
					iv := sigmoid(zrow[j] + zhrow[j] + bias[j])
					fv := sigmoid(zrow[H+j] + zhrow[H+j] + bias[H+j])
					gv := math.Tanh(zrow[2*H+j] + zhrow[2*H+j] + bias[2*H+j])
					ov := sigmoid(zrow[3*H+j] + zhrow[3*H+j] + bias[3*H+j])
					s.gi.Data[off+j] = iv
					s.gf.Data[off+j] = fv
					s.gg.Data[off+j] = gv
					s.go_.Data[off+j] = ov
					cv := fv*cPrev[j] + iv*gv
					cNew[j] = cv
					tc := math.Tanh(cv)
					s.tanhC.Data[off+j] = tc
					hNew[j] = ov * tc
				}
			}
		}
		if b*H < parFlops/8 {
			step(0, b)
		} else {
			par.Run(b, step)
		}
	}

	if l.ReturnSequences {
		seq := tensor.New(b, H, T)
		scatter := func(lo, hi int) {
			for r := lo; r < hi; r++ {
				bi, j := r/H, r%H
				for t := 0; t < T; t++ {
					seq.Data[r*T+t] = s.hAll.Data[(t+1)*b*H+bi*H+j]
				}
			}
		}
		if b*H*T < parFlops {
			scatter(0, b*H)
		} else {
			par.Run(b*H, scatter)
		}
		return seq
	}
	out := tensor.New(b, H)
	copy(out.Data, s.hAll.Data[T*b*H:(T+1)*b*H])
	return out
}

// Backward implements Layer.
func (l *LSTM) Backward(grad *tensor.Tensor) *tensor.Tensor {
	s := &l.s
	b, T := s.b, s.t
	H, F := l.Hidden, l.InFeatures
	dx := tensor.New(b, F, T)
	s.dh.Zero()
	s.dc.Zero()

	for t := T - 1; t >= 0; t-- {
		// Fold in the gradient arriving at h_t from the layer output.
		if l.ReturnSequences {
			for bi := 0; bi < b; bi++ {
				for j := 0; j < H; j++ {
					s.dh.Data[bi*H+j] += grad.Data[(bi*H+j)*T+t]
				}
			}
		} else if t == T-1 {
			s.dh.AddInPlace(grad)
		}

		base := t * b
		// Elementwise gate gradients for the whole step, written into the
		// step's block of dzAll.
		stepBack := func(lo, hi int) {
			for bi := lo; bi < hi; bi++ {
				off := (base + bi) * H
				dzrow := s.dzAll.Data[(base+bi)*4*H : (base+bi+1)*4*H]
				cPrev := s.cAll.Data[t*b*H+bi*H : t*b*H+(bi+1)*H]
				for j := 0; j < H; j++ {
					dhv := s.dh.Data[bi*H+j]
					tc := s.tanhC.Data[off+j]
					iv := s.gi.Data[off+j]
					fv := s.gf.Data[off+j]
					gv := s.gg.Data[off+j]
					ov := s.go_.Data[off+j]
					dcv := s.dc.Data[bi*H+j] + dhv*ov*(1-tc*tc)
					dzrow[j] = dcv * gv * iv * (1 - iv)
					dzrow[H+j] = dcv * cPrev[j] * fv * (1 - fv)
					dzrow[2*H+j] = dcv * iv * (1 - gv*gv)
					dzrow[3*H+j] = dhv * tc * ov * (1 - ov)
					s.dcPrev.Data[bi*H+j] = dcv * fv
				}
			}
		}
		if b*H < parFlops/8 {
			stepBack(0, b)
		} else {
			par.Run(b, stepBack)
		}
		// Gradient to h_{t−1} via the recurrence.
		s.dzView[t].MatMulInto(l.Wh.Value, s.dh)
		s.dc, s.dcPrev = s.dcPrev, s.dc
	}

	// Stacked parameter and input gradients as single large matmuls:
	// rows 0..T*B of hAll are exactly h_{t−1} for every step.
	hPrevAll := tensor.FromSlice(s.hAll.Data[:T*b*H], T*b, H)
	s.dzAll.TMatMulAcc(s.xAll, l.Wx.Grad)
	s.dzAll.TMatMulAcc(hPrevAll, l.Wh.Grad)
	s.dzAll.SumRowsAcc(l.B.Grad)
	s.dzAll.MatMulInto(l.Wx.Value, s.dxAll)
	scatter := func(lo, hi int) {
		for r := lo; r < hi; r++ {
			tt, bi := r/b, r%b
			row := s.dxAll.Data[r*F : (r+1)*F]
			for fi := 0; fi < F; fi++ {
				dx.Data[(bi*F+fi)*T+tt] = row[fi]
			}
		}
	}
	if T*b*F < parFlops {
		scatter(0, T*b)
	} else {
		par.Run(T*b, scatter)
	}
	return dx
}

// Params implements Layer.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }
