package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// ReverseTime reverses the time axis of a [batch, channels, time] tensor.
// It is the building block for bidirectional recurrent models: feed the
// reversed sequence to a second recurrent layer and combine the outputs.
type ReverseTime struct{}

func reverseTime(x *tensor.Tensor) *tensor.Tensor {
	if x.Dims() != 3 {
		panic(fmt.Sprintf("nn: ReverseTime requires [batch, channels, time], got %v", x.Shape()))
	}
	b, c, t := x.Dim(0), x.Dim(1), x.Dim(2)
	out := tensor.New(b, c, t)
	for bc := 0; bc < b*c; bc++ {
		row := x.Data[bc*t : (bc+1)*t]
		orow := out.Data[bc*t : (bc+1)*t]
		for i := 0; i < t; i++ {
			orow[i] = row[t-1-i]
		}
	}
	return out
}

// Forward implements Layer.
func (ReverseTime) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor { return reverseTime(x) }

// Backward implements Layer. Reversal is its own adjoint.
func (ReverseTime) Backward(grad *tensor.Tensor) *tensor.Tensor { return reverseTime(grad) }

// Params implements Layer.
func (ReverseTime) Params() []*Param { return nil }

// Concat2D concatenates two [batch, features] tensors along the feature
// axis. It is a helper for models with parallel branches (e.g. BiLSTM).
func Concat2D(a, b *tensor.Tensor) *tensor.Tensor {
	if a.Dims() != 2 || b.Dims() != 2 || a.Dim(0) != b.Dim(0) {
		panic(fmt.Sprintf("nn: Concat2D shape mismatch %v vs %v", a.Shape(), b.Shape()))
	}
	rows, fa, fb := a.Dim(0), a.Dim(1), b.Dim(1)
	out := tensor.New(rows, fa+fb)
	for r := 0; r < rows; r++ {
		copy(out.Data[r*(fa+fb):], a.Data[r*fa:(r+1)*fa])
		copy(out.Data[r*(fa+fb)+fa:], b.Data[r*fb:(r+1)*fb])
	}
	return out
}

// SplitGrad2D splits a gradient produced against Concat2D's output back
// into the two branch gradients.
func SplitGrad2D(grad *tensor.Tensor, fa int) (ga, gb *tensor.Tensor) {
	rows, ftot := grad.Dim(0), grad.Dim(1)
	fb := ftot - fa
	ga = tensor.New(rows, fa)
	gb = tensor.New(rows, fb)
	for r := 0; r < rows; r++ {
		copy(ga.Data[r*fa:], grad.Data[r*ftot:r*ftot+fa])
		copy(gb.Data[r*fb:], grad.Data[r*ftot+fa:(r+1)*ftot])
	}
	return ga, gb
}
