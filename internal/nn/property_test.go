package nn

import (
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// Property: convolution is linear in its input — conv(a·x + b·y) equals
// a·conv(x) + b·conv(y) when the bias is zero.
func TestPropertyConvLinearity(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		c := NewCausalConv1D(r, 2, 3, 3, 2, false)
		c.B.Value.Zero()
		x := tensor.RandN(r, 1, 2, 10)
		y := tensor.RandN(r, 1, 2, 10)
		a, b := 2.0, -0.5
		lhs := c.Forward(x.Scale(a).AddInPlace(y.Scale(b)), false)
		rhs := c.Forward(x, false).Scale(a).AddInPlace(c.Forward(y, false).Scale(b))
		return lhs.Equal(rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dense is affine — D(x+y) − D(0) == (D(x) − D(0)) + (D(y) − D(0)).
func TestPropertyDenseAffine(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		d := NewDense(r, 4, 3)
		x := tensor.RandN(r, 2, 4)
		y := tensor.RandN(r, 2, 4)
		zero := tensor.New(2, 4)
		d0 := d.Forward(zero, false)
		lhs := d.Forward(x.Add(y), false).Sub(d0)
		rhs := d.Forward(x, false).Sub(d0).AddInPlace(d.Forward(y, false).Sub(d0))
		return lhs.Equal(rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: forward passes in eval mode are deterministic — two identical
// calls produce identical outputs for every stochastic layer.
func TestPropertyEvalDeterminism(t *testing.T) {
	r := tensor.NewRNG(77)
	m := NewSequential(
		NewCausalConv1D(r, 2, 4, 3, 1, true),
		NewSpatialDropout1D(r, 0.5),
		&LastStep{},
		NewDropout(r, 0.5),
		NewDense(r, 4, 2),
	)
	x := tensor.RandN(r, 3, 2, 8)
	y1 := m.Forward(x, false)
	y2 := m.Forward(x, false)
	if !y1.Equal(y2, 0) {
		t.Fatal("eval-mode forward is not deterministic")
	}
}

// Property: gradient accumulation — two Backward calls without ZeroGrad
// accumulate exactly twice the gradient of one call.
func TestPropertyGradientAccumulation(t *testing.T) {
	r := tensor.NewRNG(78)
	d := NewDense(r, 3, 2)
	x := tensor.RandN(r, 4, 3)
	g := tensor.RandN(r, 4, 2)
	d.Forward(x, true)
	d.Backward(g)
	once := d.W.Grad.Clone()
	d.Forward(x, true)
	d.Backward(g)
	twice := d.W.Grad
	if !twice.Equal(once.Scale(2), 1e-12) {
		t.Fatal("gradients do not accumulate additively")
	}
}

// Property: the TCN output at time t never depends on inputs after t
// (full-stack causality under random configurations).
func TestPropertyTCNCausalityRandomConfigs(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		k := 2 + int(r.Uint64()%3)      // kernel 2..4
		blocks := 1 + int(r.Uint64()%3) // 1..3 blocks
		channels := make([]int, blocks)
		for i := range channels {
			channels[i] = 3
		}
		tcn := NewTCN(r, TCNConfig{InChannels: 1, Channels: channels, KernelSize: k, WeightNorm: true})
		x := tensor.RandN(r, 1, 1, 16)
		y1 := tcn.Forward(x, false)
		cut := 8 + int(r.Uint64()%7) // perturb somewhere in [8,15)
		x2 := x.Clone()
		x2.Set(x2.At(0, 0, cut)+10, 0, 0, cut)
		y2 := tcn.Forward(x2, false)
		for c := 0; c < 3; c++ {
			for tt := 0; tt < cut; tt++ {
				if y1.At(0, c, tt) != y2.At(0, c, tt) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
