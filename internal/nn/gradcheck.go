package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// GradCheck verifies a layer's Backward against central-difference
// numerical gradients. The scalar objective is L = Σ output ⊙ R for a
// fixed random projection R, which exercises every output element.
//
// It returns the worst relative error over the input gradient and every
// parameter gradient. Layers with stochastic training behaviour (dropout)
// must be checked with train=false.
func GradCheck(l Layer, x *tensor.Tensor, seed uint64, eps float64) (maxErr float64, detail string) {
	r := tensor.NewRNG(seed)
	out := l.Forward(x.Clone(), false)
	proj := tensor.RandN(r, out.Shape()...)

	forward := func(in *tensor.Tensor) float64 {
		return l.Forward(in, false).Dot(proj)
	}

	// Analytic gradients.
	ZeroGrad(l)
	l.Forward(x.Clone(), false)
	dx := l.Backward(proj.Clone())
	analyticParams := make([]*tensor.Tensor, 0)
	for _, p := range l.Params() {
		analyticParams = append(analyticParams, p.Grad.Clone())
	}

	check := func(name string, analytic, values *tensor.Tensor, perturb func(i int, v float64)) {
		for i := 0; i < values.Size(); i++ {
			orig := values.Data[i]
			perturb(i, orig+eps)
			lp := forward(x.Clone())
			perturb(i, orig-eps)
			lm := forward(x.Clone())
			perturb(i, orig)
			num := (lp - lm) / (2 * eps)
			ana := analytic.Data[i]
			scale := math.Max(1, math.Max(math.Abs(num), math.Abs(ana)))
			err := math.Abs(num-ana) / scale
			if err > maxErr {
				maxErr = err
				detail = fmt.Sprintf("%s[%d]: analytic=%.8g numeric=%.8g", name, i, ana, num)
			}
		}
	}

	check("input", dx, x, func(i int, v float64) { x.Data[i] = v })
	for pi, p := range l.Params() {
		p := p
		check(p.Name, analyticParams[pi], p.Value, func(i int, v float64) { p.Value.Data[i] = v })
	}
	return maxErr, detail
}
