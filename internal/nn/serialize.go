package nn

import (
	"encoding/json"
	"fmt"
	"io"
)

// paramDump is the on-disk form of one parameter tensor.
type paramDump struct {
	Name  string    `json:"name"`
	Shape []int     `json:"shape"`
	Data  []float64 `json:"data"`
}

type modelDump struct {
	Format int         `json:"format"`
	Params []paramDump `json:"params"`
}

// currentFormat is bumped on incompatible serialization changes.
const currentFormat = 1

// SaveParams writes every trainable parameter of the model to w as JSON.
// Architecture is NOT serialized: to load, rebuild the same model shape
// and call LoadParams.
func SaveParams(w io.Writer, m Layer) error {
	dump := modelDump{Format: currentFormat}
	for _, p := range m.Params() {
		dump.Params = append(dump.Params, paramDump{
			Name:  p.Name,
			Shape: p.Value.Shape(),
			Data:  p.Value.Data,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(dump)
}

// LoadParams restores parameters saved by SaveParams into a model with the
// identical architecture (same parameter order, names and shapes).
func LoadParams(r io.Reader, m Layer) error {
	var dump modelDump
	if err := json.NewDecoder(r).Decode(&dump); err != nil {
		return fmt.Errorf("nn: decoding params: %w", err)
	}
	if dump.Format != currentFormat {
		return fmt.Errorf("nn: unsupported params format %d (want %d)", dump.Format, currentFormat)
	}
	params := m.Params()
	if len(params) != len(dump.Params) {
		return fmt.Errorf("nn: model has %d params, file has %d", len(params), len(dump.Params))
	}
	for i, p := range params {
		d := dump.Params[i]
		if p.Name != d.Name {
			return fmt.Errorf("nn: param %d name mismatch: model %q, file %q", i, p.Name, d.Name)
		}
		if !sameShape(p.Value.Shape(), d.Shape) {
			return fmt.Errorf("nn: param %q shape mismatch: model %v, file %v", p.Name, p.Value.Shape(), d.Shape)
		}
		if len(d.Data) != p.Value.Size() {
			return fmt.Errorf("nn: param %q data length %d, want %d", p.Name, len(d.Data), p.Value.Size())
		}
		copy(p.Value.Data, d.Data)
	}
	return nil
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
