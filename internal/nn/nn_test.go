package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

const gradTol = 1e-5

func requireGrad(t *testing.T, l Layer, x *tensor.Tensor) {
	t.Helper()
	err, detail := GradCheck(l, x, 7, 1e-6)
	if err > gradTol {
		t.Fatalf("gradient check failed: relerr=%.3g at %s", err, detail)
	}
}

func TestDenseForwardKnown(t *testing.T) {
	r := tensor.NewRNG(1)
	d := NewDense(r, 2, 3)
	d.W.Value = tensor.FromSlice([]float64{1, 0, 0, 1, 1, 1}, 3, 2)
	d.B.Value = tensor.FromSlice([]float64{10, 20, 30}, 3)
	x := tensor.FromSlice([]float64{2, 5}, 1, 2)
	y := d.Forward(x, false)
	want := []float64{12, 25, 37}
	for i, v := range want {
		if y.Data[i] != v {
			t.Fatalf("Dense forward = %v, want %v", y.Data, want)
		}
	}
}

func TestDenseGradients(t *testing.T) {
	r := tensor.NewRNG(2)
	d := NewDense(r, 4, 3)
	x := tensor.RandN(r, 5, 4)
	requireGrad(t, d, x)
}

func TestReLUGradients(t *testing.T) {
	r := tensor.NewRNG(3)
	x := tensor.RandN(r, 4, 6)
	// Keep values away from the kink at 0 so finite differences are valid.
	for i, v := range x.Data {
		if math.Abs(v) < 0.05 {
			x.Data[i] = 0.1
		}
	}
	requireGrad(t, &ReLU{}, x)
}

func TestTanhSigmoidGradients(t *testing.T) {
	r := tensor.NewRNG(4)
	x := tensor.RandN(r, 3, 5)
	requireGrad(t, &Tanh{}, x)
	requireGrad(t, &Sigmoid{}, x.Clone())
}

func TestSoftmaxRowsSumsToOne(t *testing.T) {
	r := tensor.NewRNG(5)
	x := tensor.RandN(r, 4, 7).ScaleInPlace(10)
	s := softmaxRows(x)
	for row := 0; row < 4; row++ {
		sum := 0.0
		for c := 0; c < 7; c++ {
			v := s.At(row, c)
			if v < 0 || v > 1 {
				t.Fatalf("softmax value out of range: %g", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("softmax row sums to %g", sum)
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	x := tensor.FromSlice([]float64{1000, 1001, 999}, 1, 3)
	s := softmaxRows(x)
	for _, v := range s.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax overflow: %v", s.Data)
		}
	}
}

func TestCausalConv1DCausality(t *testing.T) {
	// Perturbing a future input sample must not change past outputs.
	r := tensor.NewRNG(6)
	c := NewCausalConv1D(r, 2, 3, 3, 2, false)
	x := tensor.RandN(r, 1, 2, 12)
	y1 := c.Forward(x, false)
	x2 := x.Clone()
	x2.Set(x2.At(0, 0, 9)+100, 0, 0, 9) // bump t=9
	y2 := c.Forward(x2, false)
	for co := 0; co < 3; co++ {
		for tt := 0; tt < 9; tt++ {
			if y1.At(0, co, tt) != y2.At(0, co, tt) {
				t.Fatalf("future input leaked into past output at t=%d", tt)
			}
		}
		if y1.At(0, co, 9) == y2.At(0, co, 9) {
			t.Fatal("perturbation had no effect at its own time step")
		}
	}
}

func TestCausalConv1DIdentityKernel(t *testing.T) {
	// A kernel that is 1 at the last tap and 0 elsewhere must reproduce the
	// input (the last tap corresponds to the current sample).
	r := tensor.NewRNG(7)
	c := NewCausalConv1D(r, 1, 1, 3, 1, false)
	c.W.Value.Zero()
	c.W.Value.Set(1, 0, 0, 2)
	c.B.Value.Zero()
	x := tensor.RandN(r, 2, 1, 8)
	y := c.Forward(x, false)
	if !y.Equal(x, 1e-12) {
		t.Fatal("identity kernel did not reproduce input")
	}
}

func TestCausalConv1DShiftKernel(t *testing.T) {
	// Kernel 1 at the first tap with dilation d delays the signal by (K−1)·d.
	r := tensor.NewRNG(8)
	c := NewCausalConv1D(r, 1, 1, 2, 3, false)
	c.W.Value.Zero()
	c.W.Value.Set(1, 0, 0, 0) // tap at (K−1−0)·d = 3 samples back
	c.B.Value.Zero()
	x := tensor.RandN(r, 1, 1, 10)
	y := c.Forward(x, false)
	for tt := 0; tt < 10; tt++ {
		want := 0.0
		if tt >= 3 {
			want = x.At(0, 0, tt-3)
		}
		if math.Abs(y.At(0, 0, tt)-want) > 1e-12 {
			t.Fatalf("shift kernel wrong at t=%d: got %g want %g", tt, y.At(0, 0, tt), want)
		}
	}
}

func TestCausalConv1DReceptiveField(t *testing.T) {
	r := tensor.NewRNG(9)
	c := NewCausalConv1D(r, 1, 1, 3, 4, false)
	if got := c.ReceptiveField(); got != 9 {
		t.Fatalf("ReceptiveField = %d, want 9", got)
	}
}

func TestCausalConv1DGradients(t *testing.T) {
	r := tensor.NewRNG(10)
	c := NewCausalConv1D(r, 2, 3, 3, 2, false)
	x := tensor.RandN(r, 2, 2, 9)
	requireGrad(t, c, x)
}

func TestCausalConv1DWeightNormGradients(t *testing.T) {
	r := tensor.NewRNG(11)
	c := NewCausalConv1D(r, 2, 2, 2, 1, true)
	x := tensor.RandN(r, 2, 2, 6)
	requireGrad(t, c, x)
}

func TestWeightNormInitializationMatchesPlain(t *testing.T) {
	// At init, g = ‖V‖ so the effective kernel equals V.
	r := tensor.NewRNG(12)
	c := NewCausalConv1D(r, 2, 3, 3, 1, true)
	w := c.effectiveKernel()
	if !w.Equal(c.V.Value, 1e-10) {
		t.Fatal("weight-norm effective kernel at init should equal V")
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	r := tensor.NewRNG(13)
	d := NewDropout(r, 0.5)
	x := tensor.RandN(r, 3, 4)
	y := d.Forward(x, false)
	if !y.Equal(x, 0) {
		t.Fatal("dropout must be identity in eval mode")
	}
	g := tensor.RandN(r, 3, 4)
	if !d.Backward(g).Equal(g, 0) {
		t.Fatal("dropout backward must be identity in eval mode")
	}
}

func TestDropoutTrainPreservesMeanAndMasksGrad(t *testing.T) {
	r := tensor.NewRNG(14)
	d := NewDropout(r, 0.3)
	x := tensor.Full(1, 200, 50)
	y := d.Forward(x, true)
	if m := y.Mean(); math.Abs(m-1) > 0.05 {
		t.Fatalf("inverted dropout mean = %g, want ~1", m)
	}
	// Backward must use exactly the same mask.
	g := tensor.Full(1, 200, 50)
	gb := d.Backward(g)
	for i := range y.Data {
		if (y.Data[i] == 0) != (gb.Data[i] == 0) {
			t.Fatal("backward mask differs from forward mask")
		}
	}
}

func TestSpatialDropoutDropsWholeChannels(t *testing.T) {
	r := tensor.NewRNG(15)
	d := NewSpatialDropout1D(r, 0.5)
	x := tensor.Full(1, 8, 16, 10)
	y := d.Forward(x, true)
	for b := 0; b < 8; b++ {
		for c := 0; c < 16; c++ {
			zero, nonzero := 0, 0
			for tt := 0; tt < 10; tt++ {
				if y.At(b, c, tt) == 0 {
					zero++
				} else {
					nonzero++
				}
			}
			if zero != 0 && nonzero != 0 {
				t.Fatal("spatial dropout must drop entire channels")
			}
		}
	}
}

func TestTemporalBlockResidualIdentity(t *testing.T) {
	// With all conv weights zeroed (same channel count, no downsample), the
	// block must reduce to o = ReLU(x + bias-path); with zero biases that is
	// ReLU(x).
	r := tensor.NewRNG(16)
	b := NewTemporalBlock(r, TemporalBlockConfig{
		InChannels: 3, OutChannels: 3, KernelSize: 3, Dilation: 1, Dropout: 0, WeightNorm: false,
	})
	b.conv1.W.Value.Zero()
	b.conv1.B.Value.Zero()
	b.conv2.W.Value.Zero()
	b.conv2.B.Value.Zero()
	x := tensor.RandN(r, 2, 3, 7)
	y := b.Forward(x, false)
	want := x.Apply(func(v float64) float64 { return math.Max(0, v) })
	if !y.Equal(want, 1e-12) {
		t.Fatal("zeroed temporal block should equal ReLU(x)")
	}
}

func TestTemporalBlockGradients(t *testing.T) {
	r := tensor.NewRNG(17)
	b := NewTemporalBlock(r, TemporalBlockConfig{
		InChannels: 2, OutChannels: 3, KernelSize: 2, Dilation: 2, Dropout: 0, WeightNorm: true,
	})
	x := tensor.RandN(r, 2, 2, 8)
	requireGrad(t, b, x)
}

func TestTCNReceptiveFieldGrowth(t *testing.T) {
	r := tensor.NewRNG(18)
	tcn := NewTCN(r, TCNConfig{
		InChannels: 1, Channels: []int{4, 4, 4}, KernelSize: 3, Dropout: 0, WeightNorm: true,
	})
	// Per block: 2(K−1)d+1 with d = 1,2,4 → rf = 1 + 4 + 8 + 16 = 29.
	if got := tcn.ReceptiveField(); got != 29 {
		t.Fatalf("TCN receptive field = %d, want 29", got)
	}
}

func TestTCNGradients(t *testing.T) {
	r := tensor.NewRNG(19)
	tcn := NewTCN(r, TCNConfig{
		InChannels: 2, Channels: []int{3, 3}, KernelSize: 2, Dropout: 0, WeightNorm: false,
	})
	x := tensor.RandN(r, 2, 2, 8)
	requireGrad(t, tcn, x)
}

func TestTCNCausality(t *testing.T) {
	r := tensor.NewRNG(20)
	tcn := NewTCN(r, TCNConfig{
		InChannels: 1, Channels: []int{4, 4}, KernelSize: 3, Dropout: 0, WeightNorm: true,
	})
	x := tensor.RandN(r, 1, 1, 20)
	y1 := tcn.Forward(x, false)
	x2 := x.Clone()
	x2.Set(99, 0, 0, 15)
	y2 := tcn.Forward(x2, false)
	for c := 0; c < 4; c++ {
		for tt := 0; tt < 15; tt++ {
			if y1.At(0, c, tt) != y2.At(0, c, tt) {
				t.Fatalf("TCN leaked future info at t=%d", tt)
			}
		}
	}
}

func TestFeatureAttentionOutputBounded(t *testing.T) {
	// g = a ⊙ x with a ∈ (0,1): |g_i| ≤ |x_i| elementwise.
	r := tensor.NewRNG(21)
	a := NewFeatureAttention(r, 6)
	x := tensor.RandN(r, 4, 6)
	y := a.Forward(x, false)
	for i := range y.Data {
		if math.Abs(y.Data[i]) > math.Abs(x.Data[i])+1e-12 {
			t.Fatal("attention glimpse exceeded input magnitude")
		}
	}
	w := a.Weights()
	for row := 0; row < 4; row++ {
		sum := 0.0
		for c := 0; c < 6; c++ {
			sum += w.At(row, c)
		}
		if math.Abs(sum-1) > 1e-10 {
			t.Fatalf("attention weights row sum = %g", sum)
		}
	}
}

func TestFeatureAttentionGradients(t *testing.T) {
	r := tensor.NewRNG(22)
	a := NewFeatureAttention(r, 5)
	x := tensor.RandN(r, 3, 5)
	requireGrad(t, a, x)
}

func TestLSTMShapes(t *testing.T) {
	r := tensor.NewRNG(23)
	l := NewLSTM(r, 3, 4, false)
	x := tensor.RandN(r, 2, 3, 6)
	y := l.Forward(x, false)
	if y.Dim(0) != 2 || y.Dim(1) != 4 {
		t.Fatalf("LSTM last-state shape = %v", y.Shape())
	}
	ls := NewLSTM(r, 3, 4, true)
	ys := ls.Forward(x, false)
	if ys.Dim(0) != 2 || ys.Dim(1) != 4 || ys.Dim(2) != 6 {
		t.Fatalf("LSTM sequence shape = %v", ys.Shape())
	}
}

func TestLSTMSequenceLastStepMatchesFinalState(t *testing.T) {
	r := tensor.NewRNG(24)
	l1 := NewLSTM(r, 2, 3, false)
	l2 := &LSTM{
		InFeatures: 2, Hidden: 3, ReturnSequences: true,
		Wx: l1.Wx, Wh: l1.Wh, B: l1.B,
	}
	x := tensor.RandN(r, 2, 2, 5)
	h := l1.Forward(x, false)
	seq := l2.Forward(x, false)
	for b := 0; b < 2; b++ {
		for j := 0; j < 3; j++ {
			if math.Abs(h.At(b, j)-seq.At(b, j, 4)) > 1e-12 {
				t.Fatal("sequence output last step differs from final hidden state")
			}
		}
	}
}

func TestLSTMGradientsLastState(t *testing.T) {
	r := tensor.NewRNG(25)
	l := NewLSTM(r, 2, 3, false)
	x := tensor.RandN(r, 2, 2, 5)
	requireGrad(t, l, x)
}

func TestLSTMGradientsSequences(t *testing.T) {
	r := tensor.NewRNG(26)
	l := NewLSTM(r, 2, 2, true)
	x := tensor.RandN(r, 2, 2, 4)
	requireGrad(t, l, x)
}

func TestFlattenRoundTrip(t *testing.T) {
	f := &Flatten{}
	x := tensor.RandN(tensor.NewRNG(27), 2, 3, 4)
	y := f.Forward(x, false)
	if y.Dim(0) != 2 || y.Dim(1) != 12 {
		t.Fatalf("Flatten shape = %v", y.Shape())
	}
	g := f.Backward(y)
	if g.Dim(1) != 3 || g.Dim(2) != 4 {
		t.Fatalf("Flatten backward shape = %v", g.Shape())
	}
}

func TestLastStepSelectsFinalColumn(t *testing.T) {
	l := &LastStep{}
	x := tensor.FromSlice([]float64{
		1, 2, 3, // b0 c0
		4, 5, 6, // b0 c1
	}, 1, 2, 3)
	y := l.Forward(x, false)
	if y.At(0, 0) != 3 || y.At(0, 1) != 6 {
		t.Fatalf("LastStep = %v", y.Data)
	}
	g := l.Backward(tensor.FromSlice([]float64{10, 20}, 1, 2))
	if g.At(0, 0, 2) != 10 || g.At(0, 1, 2) != 20 || g.At(0, 0, 0) != 0 {
		t.Fatalf("LastStep backward = %v", g.Data)
	}
}

func TestLastStepGradients(t *testing.T) {
	r := tensor.NewRNG(28)
	x := tensor.RandN(r, 2, 3, 4)
	requireGrad(t, &LastStep{}, x)
}

func TestSequentialGradients(t *testing.T) {
	r := tensor.NewRNG(29)
	m := NewSequential(
		NewCausalConv1D(r, 1, 2, 2, 1, true),
		&LastStep{},
		NewDense(r, 2, 3),
		&Tanh{},
		NewDense(r, 3, 1),
	)
	x := tensor.RandN(r, 2, 1, 6)
	requireGrad(t, m, x)
}

func TestMSELossValueAndGrad(t *testing.T) {
	pred := tensor.FromSlice([]float64{1, 2, 3}, 3)
	targ := tensor.FromSlice([]float64{0, 2, 5}, 3)
	l := &MSELoss{}
	if got := l.Forward(pred, targ); math.Abs(got-5.0/3.0) > 1e-12 {
		t.Fatalf("MSE = %g, want %g", got, 5.0/3.0)
	}
	g := l.Backward()
	want := []float64{2.0 / 3, 0, -4.0 / 3}
	for i := range want {
		if math.Abs(g.Data[i]-want[i]) > 1e-12 {
			t.Fatalf("MSE grad = %v, want %v", g.Data, want)
		}
	}
}

func TestMAELossValueAndGrad(t *testing.T) {
	pred := tensor.FromSlice([]float64{1, 2, 3}, 3)
	targ := tensor.FromSlice([]float64{0, 2, 5}, 3)
	l := &MAELoss{}
	if got := l.Forward(pred, targ); math.Abs(got-1) > 1e-12 {
		t.Fatalf("MAE = %g, want 1", got)
	}
	g := l.Backward()
	want := []float64{1.0 / 3, 0, -1.0 / 3}
	for i := range want {
		if math.Abs(g.Data[i]-want[i]) > 1e-12 {
			t.Fatalf("MAE grad = %v, want %v", g.Data, want)
		}
	}
}

func TestHuberLossLimits(t *testing.T) {
	l := &HuberLoss{Delta: 1}
	// Small residuals: behaves like 0.5·MSE.
	small := l.Forward(tensor.FromSlice([]float64{0.2}, 1), tensor.FromSlice([]float64{0}, 1))
	if math.Abs(small-0.02) > 1e-12 {
		t.Fatalf("Huber small = %g, want 0.02", small)
	}
	// Large residuals: linear.
	large := l.Forward(tensor.FromSlice([]float64{10}, 1), tensor.FromSlice([]float64{0}, 1))
	if math.Abs(large-9.5) > 1e-12 {
		t.Fatalf("Huber large = %g, want 9.5", large)
	}
}

func TestLossGradientNumerically(t *testing.T) {
	r := tensor.NewRNG(30)
	pred := tensor.RandN(r, 2, 3)
	targ := tensor.RandN(r, 2, 3)
	for _, tc := range []struct {
		name string
		loss Loss
	}{
		{"mse", &MSELoss{}},
		{"huber", &HuberLoss{Delta: 0.7}},
	} {
		tc.loss.Forward(pred, targ)
		g := tc.loss.Backward()
		const eps = 1e-6
		for i := range pred.Data {
			orig := pred.Data[i]
			pred.Data[i] = orig + eps
			lp := tc.loss.Forward(pred, targ)
			pred.Data[i] = orig - eps
			lm := tc.loss.Forward(pred, targ)
			pred.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-g.Data[i]) > 1e-6 {
				t.Fatalf("%s grad[%d]: analytic %g vs numeric %g", tc.name, i, g.Data[i], num)
			}
		}
	}
}

func TestParamCount(t *testing.T) {
	r := tensor.NewRNG(31)
	d := NewDense(r, 4, 3)
	if got := ParamCount(d); got != 4*3+3 {
		t.Fatalf("ParamCount = %d, want 15", got)
	}
}

func TestZeroGrad(t *testing.T) {
	r := tensor.NewRNG(32)
	d := NewDense(r, 2, 2)
	x := tensor.RandN(r, 3, 2)
	d.Forward(x, true)
	d.Backward(tensor.RandN(r, 3, 2))
	ZeroGrad(d)
	for _, p := range d.Params() {
		for _, v := range p.Grad.Data {
			if v != 0 {
				t.Fatal("ZeroGrad left nonzero gradient")
			}
		}
	}
}
