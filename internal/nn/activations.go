package nn

import (
	"math"

	"repro/internal/par"
	"repro/internal/tensor"
)

// ReLU is the rectified linear activation used inside temporal blocks.
type ReLU struct {
	mask []bool
}

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	out := tensor.New(x.Shape()...)
	if cap(r.mask) < x.Size() {
		r.mask = make([]bool, x.Size())
	}
	r.mask = r.mask[:x.Size()]
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			r.mask[i] = true
		} else {
			r.mask[i] = false
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(grad.Shape()...)
	for i, v := range grad.Data {
		if r.mask[i] {
			out.Data[i] = v
		}
	}
	return out
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	y *tensor.Tensor
}

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	t.y = x.Apply(math.Tanh)
	return t.y
}

// Backward implements Layer.
func (t *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(grad.Shape()...)
	for i, g := range grad.Data {
		y := t.y.Data[i]
		out.Data[i] = g * (1 - y*y)
	}
	return out
}

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }

// Sigmoid is the logistic activation.
type Sigmoid struct {
	y *tensor.Tensor
}

func sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

// Forward implements Layer.
func (s *Sigmoid) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	s.y = x.Apply(sigmoid)
	return s.y
}

// Backward implements Layer.
func (s *Sigmoid) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(grad.Shape()...)
	for i, g := range grad.Data {
		y := s.y.Data[i]
		out.Data[i] = g * y * (1 - y)
	}
	return out
}

// Params implements Layer.
func (s *Sigmoid) Params() []*Param { return nil }

// softmaxRows applies a numerically stable softmax to each row of a
// [batch, n] tensor, parallelized across rows (each row's reduction stays
// sequential, so results do not depend on the worker count).
func softmaxRows(x *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(x.Dim(0), x.Dim(1))
	softmaxRowsInto(x, out)
	return out
}

// softmaxRowsInto writes softmax(x) row-by-row into out. The row kernel
// is a named function so the small-size inline path (the one arena
// inference takes) allocates no closure.
func softmaxRowsInto(x, out *tensor.Tensor) {
	rows, cols := x.Dim(0), x.Dim(1)
	// math.Exp costs ~10× a mul-add, so the parallel bar is lower than for
	// matmuls.
	if rows*cols < parFlops/8 {
		softmaxRowsRange(x, out, cols, 0, rows)
	} else {
		par.Run(rows, func(lo, hi int) { softmaxRowsRange(x, out, cols, lo, hi) })
	}
}

func softmaxRowsRange(x, out *tensor.Tensor, cols, lo, hi int) {
	for r := lo; r < hi; r++ {
		row := x.Data[r*cols : (r+1)*cols]
		orow := out.Data[r*cols : (r+1)*cols]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		for i, v := range row {
			e := math.Exp(v - maxv)
			orow[i] = e
			sum += e
		}
		for i := range orow {
			orow[i] /= sum
		}
	}
}
