package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestLayerNormNormalizesRows(t *testing.T) {
	r := tensor.NewRNG(1)
	ln := NewLayerNorm(16)
	x := tensor.RandN(r, 4, 16).ScaleInPlace(7)
	y := ln.Forward(x, false)
	// With γ=1, β=0 every output row has ~zero mean and ~unit variance.
	for bi := 0; bi < 4; bi++ {
		row := y.Data[bi*16 : (bi+1)*16]
		mean, variance := 0.0, 0.0
		for _, v := range row {
			mean += v
		}
		mean /= 16
		for _, v := range row {
			variance += (v - mean) * (v - mean)
		}
		variance /= 16
		if math.Abs(mean) > 1e-10 {
			t.Fatalf("row mean = %g", mean)
		}
		if math.Abs(variance-1) > 1e-3 {
			t.Fatalf("row variance = %g", variance)
		}
	}
}

func TestLayerNormAffine(t *testing.T) {
	ln := NewLayerNorm(2)
	ln.Gamma.Value.Data[0] = 3
	ln.Beta.Value.Data[1] = -5
	x := tensor.FromSlice([]float64{1, 3}, 1, 2) // normalizes to [-1, 1]
	y := ln.Forward(x, false)
	if math.Abs(y.At(0, 0)+3) > 1e-3 || math.Abs(y.At(0, 1)-(1-5)) > 1e-3 {
		t.Fatalf("affine output = %v", y.Data)
	}
}

func TestLayerNormGradients(t *testing.T) {
	r := tensor.NewRNG(2)
	ln := NewLayerNorm(5)
	// Randomize the affine params so gradients are nontrivial.
	ln.Gamma.Value = tensor.RandN(r, 5).ApplyInPlace(func(v float64) float64 { return 1 + 0.3*v })
	ln.Beta.Value = tensor.RandN(r, 5).ScaleInPlace(0.2)
	x := tensor.RandN(r, 3, 5)
	err, detail := GradCheck(ln, x, 3, 1e-6)
	if err > 1e-5 {
		t.Fatalf("LayerNorm gradient check failed: relerr=%g at %s", err, detail)
	}
}

func TestLayerNormScaleInvariance(t *testing.T) {
	// LayerNorm output is invariant to positive rescaling of the input row.
	ln := NewLayerNorm(4)
	x := tensor.FromSlice([]float64{1, 2, 3, 4}, 1, 4)
	y1 := ln.Forward(x, false).Clone()
	// ε in the variance makes this approximate; the deviation shrinks as
	// the input scale grows.
	y2 := ln.Forward(x.Scale(10), false)
	if !y1.Equal(y2, 1e-4) {
		t.Fatalf("not scale invariant: %v vs %v", y1.Data, y2.Data)
	}
}

func TestLayerNormFeatureMismatchPanics(t *testing.T) {
	ln := NewLayerNorm(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ln.Forward(tensor.New(1, 4), false)
}
