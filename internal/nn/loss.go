package nn

import (
	"math"

	"repro/internal/tensor"
)

// Loss is a differentiable scalar objective over (prediction, target).
type Loss interface {
	// Forward returns the scalar loss.
	Forward(pred, target *tensor.Tensor) float64
	// Backward returns dLoss/dPred for the most recent Forward.
	Backward() *tensor.Tensor
}

// MSELoss is the mean squared error (eq. 9), the paper's training
// objective.
type MSELoss struct {
	pred, target *tensor.Tensor
}

// Forward implements Loss.
func (l *MSELoss) Forward(pred, target *tensor.Tensor) float64 {
	if !pred.SameShape(target) {
		panic("nn: MSELoss shape mismatch")
	}
	l.pred, l.target = pred, target
	s := 0.0
	for i, p := range pred.Data {
		d := p - target.Data[i]
		s += d * d
	}
	return s / float64(pred.Size())
}

// Backward implements Loss.
func (l *MSELoss) Backward() *tensor.Tensor {
	n := float64(l.pred.Size())
	out := tensor.New(l.pred.Shape()...)
	for i, p := range l.pred.Data {
		out.Data[i] = 2 * (p - l.target.Data[i]) / n
	}
	return out
}

// MAELoss is the mean absolute error (eq. 10). At zero residual the
// subgradient 0 is used.
type MAELoss struct {
	pred, target *tensor.Tensor
}

// Forward implements Loss.
func (l *MAELoss) Forward(pred, target *tensor.Tensor) float64 {
	if !pred.SameShape(target) {
		panic("nn: MAELoss shape mismatch")
	}
	l.pred, l.target = pred, target
	s := 0.0
	for i, p := range pred.Data {
		s += math.Abs(p - target.Data[i])
	}
	return s / float64(pred.Size())
}

// Backward implements Loss.
func (l *MAELoss) Backward() *tensor.Tensor {
	n := float64(l.pred.Size())
	out := tensor.New(l.pred.Shape()...)
	for i, p := range l.pred.Data {
		d := p - l.target.Data[i]
		switch {
		case d > 0:
			out.Data[i] = 1 / n
		case d < 0:
			out.Data[i] = -1 / n
		}
	}
	return out
}

// HuberLoss blends MSE (near zero) and MAE (in the tails); delta sets the
// crossover. It is offered for robustness experiments beyond the paper.
type HuberLoss struct {
	Delta        float64
	pred, target *tensor.Tensor
}

// Forward implements Loss.
func (l *HuberLoss) Forward(pred, target *tensor.Tensor) float64 {
	if !pred.SameShape(target) {
		panic("nn: HuberLoss shape mismatch")
	}
	if l.Delta <= 0 {
		l.Delta = 1
	}
	l.pred, l.target = pred, target
	s := 0.0
	for i, p := range pred.Data {
		d := math.Abs(p - target.Data[i])
		if d <= l.Delta {
			s += 0.5 * d * d
		} else {
			s += l.Delta * (d - 0.5*l.Delta)
		}
	}
	return s / float64(pred.Size())
}

// Backward implements Loss.
func (l *HuberLoss) Backward() *tensor.Tensor {
	n := float64(l.pred.Size())
	out := tensor.New(l.pred.Shape()...)
	for i, p := range l.pred.Data {
		d := p - l.target.Data[i]
		if math.Abs(d) <= l.Delta {
			out.Data[i] = d / n
		} else {
			out.Data[i] = math.Copysign(l.Delta, d) / n
		}
	}
	return out
}
