package nn

import (
	"math"

	"repro/internal/par"
	"repro/internal/tensor"
)

// Loss is a differentiable scalar objective over (prediction, target).
type Loss interface {
	// Forward returns the scalar loss.
	Forward(pred, target *tensor.Tensor) float64
	// Backward returns dLoss/dPred for the most recent Forward. The
	// returned tensor is owned by the loss and reused by the next
	// Backward call; consume it before calling Backward again.
	Backward() *tensor.Tensor
}

// lossGrain is the fixed reduction chunk size for loss forwards. Chunk
// boundaries depend only on the element count, and the per-chunk partial
// sums are folded in chunk-index order, so the loss value is bitwise
// identical for any worker count (see internal/par).
const lossGrain = 4096

// lossReduce sums f(pred[i], target[i]) over all elements via the
// deterministic chunked reduction. partials is a scratch slice reused
// across calls.
func lossReduce(pred, target *tensor.Tensor, partials *[]float64, f func(p, t float64) float64) float64 {
	n := pred.Size()
	chunks := par.NumChunks(n, lossGrain)
	if cap(*partials) < chunks {
		*partials = make([]float64, chunks)
	}
	parts := (*partials)[:chunks]
	par.RunChunks(n, lossGrain, func(chunk, lo, hi int) {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += f(pred.Data[i], target.Data[i])
		}
		parts[chunk] = s
	})
	total := 0.0
	for _, s := range parts {
		total += s
	}
	return total
}

// lossGrad fills the reused gradient buffer elementwise in parallel.
func lossGrad(pred *tensor.Tensor, buf **tensor.Tensor, f func(i int) float64) *tensor.Tensor {
	if *buf == nil || !(*buf).SameShape(pred) {
		*buf = tensor.NewLike(pred)
	}
	out := *buf
	par.Run(pred.Size(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Data[i] = f(i)
		}
	})
	return out
}

// MSELoss is the mean squared error (eq. 9), the paper's training
// objective.
type MSELoss struct {
	pred, target *tensor.Tensor
	grad         *tensor.Tensor
	partials     []float64
}

// Forward implements Loss.
func (l *MSELoss) Forward(pred, target *tensor.Tensor) float64 {
	if !pred.SameShape(target) {
		panic("nn: MSELoss shape mismatch")
	}
	l.pred, l.target = pred, target
	s := lossReduce(pred, target, &l.partials, func(p, t float64) float64 {
		d := p - t
		return d * d
	})
	return s / float64(pred.Size())
}

// Backward implements Loss.
func (l *MSELoss) Backward() *tensor.Tensor {
	n := float64(l.pred.Size())
	pred, target := l.pred, l.target
	return lossGrad(pred, &l.grad, func(i int) float64 {
		return 2 * (pred.Data[i] - target.Data[i]) / n
	})
}

// MAELoss is the mean absolute error (eq. 10). At zero residual the
// subgradient 0 is used.
type MAELoss struct {
	pred, target *tensor.Tensor
	grad         *tensor.Tensor
	partials     []float64
}

// Forward implements Loss.
func (l *MAELoss) Forward(pred, target *tensor.Tensor) float64 {
	if !pred.SameShape(target) {
		panic("nn: MAELoss shape mismatch")
	}
	l.pred, l.target = pred, target
	s := lossReduce(pred, target, &l.partials, func(p, t float64) float64 {
		return math.Abs(p - t)
	})
	return s / float64(pred.Size())
}

// Backward implements Loss.
func (l *MAELoss) Backward() *tensor.Tensor {
	n := float64(l.pred.Size())
	pred, target := l.pred, l.target
	return lossGrad(pred, &l.grad, func(i int) float64 {
		switch d := pred.Data[i] - target.Data[i]; {
		case d > 0:
			return 1 / n
		case d < 0:
			return -1 / n
		default:
			return 0
		}
	})
}

// HuberLoss blends MSE (near zero) and MAE (in the tails); delta sets the
// crossover. It is offered for robustness experiments beyond the paper.
type HuberLoss struct {
	Delta        float64
	pred, target *tensor.Tensor
	grad         *tensor.Tensor
	partials     []float64
}

// Forward implements Loss.
func (l *HuberLoss) Forward(pred, target *tensor.Tensor) float64 {
	if !pred.SameShape(target) {
		panic("nn: HuberLoss shape mismatch")
	}
	if l.Delta <= 0 {
		l.Delta = 1
	}
	l.pred, l.target = pred, target
	delta := l.Delta
	s := lossReduce(pred, target, &l.partials, func(p, t float64) float64 {
		d := math.Abs(p - t)
		if d <= delta {
			return 0.5 * d * d
		}
		return delta * (d - 0.5*delta)
	})
	return s / float64(pred.Size())
}

// Backward implements Loss.
func (l *HuberLoss) Backward() *tensor.Tensor {
	n := float64(l.pred.Size())
	pred, target, delta := l.pred, l.target, l.Delta
	return lossGrad(pred, &l.grad, func(i int) float64 {
		d := pred.Data[i] - target.Data[i]
		if math.Abs(d) <= delta {
			return d / n
		}
		return math.Copysign(delta, d) / n
	})
}
