package nn

import (
	"fmt"
	"math"

	"repro/internal/par"
	"repro/internal/tensor"
)

// parFlops is the mul-add count above which nn kernels fan out onto the
// internal/par pool — the same crossover as the tensor matmuls (see the
// tuning comment on parallelFlops in internal/tensor/matmul.go).
const parFlops = 32 * 64 * 64

// convBatchGrain is how many batch elements share one gradient shard in
// the parallel conv backward pass. It is a fixed constant so the shard
// boundaries — and therefore the floating-point reduction order — never
// depend on the worker count (bitwise determinism), while keeping shard
// memory at ceil(B/4) kernel-sized buffers.
const convBatchGrain = 4

// CausalConv1D is a dilated causal 1-D convolution (the paper's eq. 3–4).
// Input and output have layout [batch, channels, time]; the output length
// equals the input length thanks to left zero-padding of (K−1)·d samples,
// so no future sample ever influences the present (causality).
//
// With weight normalization enabled (as in the paper's residual blocks,
// Fig. 6) the effective kernel is W = g · V/‖V‖, where the norm is taken
// per output channel; g and V are the trainable parameters.
//
// Forward lowers the convolution to one GEMM (im2col): the input is
// unrolled into a column matrix with one row per (in-channel, tap) pair
// and the packed tensor kernel does the arithmetic. Every output sample
// is a single bias-seeded FMA chain ascending over those pairs, so the
// result is row-independent — bitwise identical for any batch size and
// any worker count. The backward pass shards over batches and reduces
// in shard-index order for the same guarantee.
type CausalConv1D struct {
	InChannels  int
	OutChannels int
	KernelSize  int
	Dilation    int
	WeightNorm  bool

	// Direct parameterization (WeightNorm == false).
	W *Param // [out, in, k]
	// Weight-normalized parameterization (WeightNorm == true).
	V *Param // [out, in, k] direction
	G *Param // [out] magnitude
	B *Param // [out] bias

	x       *tensor.Tensor // cached input
	wEff    *tensor.Tensor // effective kernel used in the last forward
	wEffBuf *tensor.Tensor // reused storage for wEff under weight norm
	vNorms  []float64      // per-output-channel ‖V‖ from the last forward
	padLeft int

	// im2col scratch for the training forward; the arena path draws the
	// same three buffers from its InferArena instead (see infer.go).
	acol *tensor.Tensor // [in·k, b·t] unrolled input columns
	wtr  *tensor.Tensor // [in·k, out] transposed effective kernel
	ycol *tensor.Tensor // [b·t, out] GEMM output, bias-seeded

	// Operands for the parallel unroll/scatter stages, read through
	// closures bound once so repeated passes allocate nothing.
	gemmX, gemmAcol, gemmYcol, gemmY *tensor.Tensor
	colRun, outRun                   func(lo, hi int)

	// Backward scratch, reused across steps.
	dwScratch *tensor.Tensor // [out, in, k] effective-kernel gradient
	dwShards  []float64      // per-shard dW partials
	dbShards  []float64      // per-shard bias partials

	// Float32 serving-tier mirrors (see infer32.go). Quantize32 bakes the
	// *effective* kernel — weight norm already applied — directly in its
	// transposed GEMM layout, so the f32 forward skips both the norm and
	// the per-call transpose.
	wt32 *tensor.Tensor32 // [in·k, out] transposed effective kernel
	b32  *tensor.Tensor32 // [out]

	gemmX32, gemmAcol32, gemmYcol32, gemmY32 *tensor.Tensor32
	colRun32, outRun32                       func(lo, hi int)
}

// NewCausalConv1D builds the layer with He-normal initialization
// (fan-in = inChannels·kernelSize, matching the ReLU blocks it feeds).
func NewCausalConv1D(r *tensor.RNG, in, out, kernel, dilation int, weightNorm bool) *CausalConv1D {
	if kernel < 1 || dilation < 1 {
		panic(fmt.Sprintf("nn: invalid conv kernel=%d dilation=%d", kernel, dilation))
	}
	c := &CausalConv1D{
		InChannels:  in,
		OutChannels: out,
		KernelSize:  kernel,
		Dilation:    dilation,
		WeightNorm:  weightNorm,
		B:           NewParam("conv.B", tensor.New(out)),
		padLeft:     (kernel - 1) * dilation,
	}
	w := HeNormal(r, in*kernel, out, in, kernel)
	if weightNorm {
		// Initialize g to the norms of the He-initialized kernel so that the
		// effective weights at step 0 equal the plain initialization.
		c.V = NewParam("conv.V", w)
		g := tensor.New(out)
		for co := 0; co < out; co++ {
			g.Data[co] = kernelNorm(w, co, in, kernel)
		}
		c.G = NewParam("conv.G", g)
	} else {
		c.W = NewParam("conv.W", w)
	}
	return c
}

// kernelNorm returns ‖V[co]‖₂ over the (in, k) slice for output channel co.
func kernelNorm(v *tensor.Tensor, co, in, k int) float64 {
	base := co * in * k
	s := 0.0
	for i := 0; i < in*k; i++ {
		x := v.Data[base+i]
		s += x * x
	}
	return math.Sqrt(s)
}

// effectiveKernel computes W from (V, g) under weight normalization into a
// reused buffer, or returns the direct W.
func (c *CausalConv1D) effectiveKernel() *tensor.Tensor {
	if !c.WeightNorm {
		return c.W.Value
	}
	in, k, out := c.InChannels, c.KernelSize, c.OutChannels
	if c.wEffBuf == nil {
		c.wEffBuf = tensor.New(out, in, k)
	}
	w := c.wEffBuf
	if cap(c.vNorms) < out {
		c.vNorms = make([]float64, out)
	}
	c.vNorms = c.vNorms[:out]
	for co := 0; co < out; co++ {
		n := kernelNorm(c.V.Value, co, in, k)
		if n < 1e-12 {
			n = 1e-12
		}
		c.vNorms[co] = n
		scale := c.G.Value.Data[co] / n
		base := co * in * k
		for i := 0; i < in*k; i++ {
			w.Data[base+i] = c.V.Value.Data[base+i] * scale
		}
	}
	return w
}

// Forward implements Layer.
func (c *CausalConv1D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Dims() != 3 {
		panic(fmt.Sprintf("nn: CausalConv1D requires [batch, channels, time], got %v", x.Shape()))
	}
	if x.Dim(1) != c.InChannels {
		panic(fmt.Sprintf("nn: CausalConv1D channel mismatch: input %d, layer %d", x.Dim(1), c.InChannels))
	}
	c.x = x
	w := c.effectiveKernel()
	c.wEff = w
	b, t := x.Dim(0), x.Dim(2)
	in, out, k := c.InChannels, c.OutChannels, c.KernelSize
	kk, m := in*k, b*t
	if c.acol == nil || c.acol.Dim(0) != kk || c.acol.Dim(1) != m {
		c.acol = tensor.New(kk, m)
		c.ycol = tensor.New(m, out)
	}
	if c.wtr == nil {
		c.wtr = tensor.New(kk, out)
	}
	y := tensor.New(b, out, t)
	c.convGemm(x, w, c.acol, c.wtr, c.ycol, y)
	return y
}

// convGemm is the shared forward kernel of the training and
// arena-inference paths, so both produce bitwise identical values. The
// causal convolution is lowered to one GEMM: x is unrolled into acol
// (one row per (in-channel, tap) pair, left-padded with zeros), the
// effective kernel is transposed into wt, ycol rows are seeded with the
// bias, and the packed kernel accumulates ycol += acolᵀ·wt — each output
// sample one FMA chain ascending over (in-channel, tap) — before the
// result is scattered back to the [batch, channel, time] layout.
func (c *CausalConv1D) convGemm(x, w, acol, wt, ycol, y *tensor.Tensor) {
	in, out, k := c.InChannels, c.OutChannels, c.KernelSize
	b, t := x.Dim(0), x.Dim(2)
	kk, m := in*k, b*t

	if c.colRun == nil {
		c.colRun = func(lo, hi int) { c.unrollCols(c.gemmX, c.gemmAcol, lo, hi) }
		c.outRun = func(lo, hi int) { c.scatterRows(c.gemmYcol, c.gemmY, lo, hi) }
	}
	c.gemmX, c.gemmAcol, c.gemmYcol, c.gemmY = x, acol, ycol, y
	if kk*m < parFlops {
		c.unrollCols(x, acol, 0, kk)
	} else {
		par.Run(kk, c.colRun)
	}

	for p := 0; p < kk; p++ {
		wrow := wt.Data[p*out : (p+1)*out]
		for co := 0; co < out; co++ {
			wrow[co] = w.Data[co*kk+p]
		}
	}
	bias := c.B.Value.Data[:out]
	for i := 0; i < m; i++ {
		copy(ycol.Data[i*out:(i+1)*out], bias)
	}
	acol.TMatMulAcc(wt, ycol)

	units := b * out
	if m*out < parFlops {
		c.scatterRows(ycol, y, 0, units)
	} else {
		par.Run(units, c.outRun)
	}
}

// unrollCols fills acol rows [lo, hi): row p = (ci·k + kk) holds channel
// ci of the input shifted right by the tap offset (K−1−kk)·d, with the
// causal left padding written as zeros. Rows are disjoint, so the stage
// parallelizes without any cross-worker reduction.
func (c *CausalConv1D) unrollCols(x, acol *tensor.Tensor, lo, hi int) {
	in, k, d := c.InChannels, c.KernelSize, c.Dilation
	b, t := x.Dim(0), x.Dim(2)
	for p := lo; p < hi; p++ {
		ci, kk := p/k, p%k
		off := (k - 1 - kk) * d
		if off > t {
			off = t
		}
		dst := acol.Data[p*b*t : (p+1)*b*t]
		for bi := 0; bi < b; bi++ {
			seg := dst[bi*t : (bi+1)*t]
			for i := 0; i < off; i++ {
				seg[i] = 0
			}
			xrow := x.Data[(bi*in+ci)*t : (bi*in+ci)*t+t]
			copy(seg[off:], xrow[:t-off])
		}
	}
}

// scatterRows copies GEMM output rows back into the [batch, channel,
// time] layout for (batch, out-channel) units [lo, hi). Each unit owns
// one disjoint output row of y.
func (c *CausalConv1D) scatterRows(ycol, y *tensor.Tensor, lo, hi int) {
	out := c.OutChannels
	t := y.Dim(2)
	for u := lo; u < hi; u++ {
		bi, co := u/out, u%out
		yrow := y.Data[u*t : (u+1)*t]
		base := bi*t*out + co
		for tt := 0; tt < t; tt++ {
			yrow[tt] = ycol.Data[base+tt*out]
		}
	}
}

// Backward implements Layer.
func (c *CausalConv1D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := c.x
	b, t := x.Dim(0), x.Dim(2)
	in, out, k, d := c.InChannels, c.OutChannels, c.KernelSize, c.Dilation
	w := c.wEff
	per := out * in * k
	if c.dwScratch == nil {
		c.dwScratch = tensor.New(out, in, k)
	}
	dW := c.dwScratch
	dW.Zero()
	dx := tensor.New(b, in, t)

	shards := par.NumChunks(b, convBatchGrain)
	if cap(c.dwShards) < shards*per {
		c.dwShards = make([]float64, shards*per)
	}
	if cap(c.dbShards) < shards*out {
		c.dbShards = make([]float64, shards*out)
	}
	dwShards := c.dwShards[:shards*per]
	dbShards := c.dbShards[:shards*out]
	for i := range dwShards {
		dwShards[i] = 0
	}
	for i := range dbShards {
		dbShards[i] = 0
	}

	// Each shard owns a fixed batch range: dx rows are disjoint, and dW/dB
	// partials land in the shard's private buffers.
	run := func(shard, lo, hi int) {
		dwS := dwShards[shard*per : (shard+1)*per]
		dbS := dbShards[shard*out : (shard+1)*out]
		for bi := lo; bi < hi; bi++ {
			xb := x.Data[bi*in*t : (bi+1)*in*t]
			gb := grad.Data[bi*out*t : (bi+1)*out*t]
			dxb := dx.Data[bi*in*t : (bi+1)*in*t]
			for co := 0; co < out; co++ {
				grow := gb[co*t : (co+1)*t]
				s := 0.0
				for _, g := range grow {
					s += g
				}
				dbS[co] += s
				for ci := 0; ci < in; ci++ {
					xrow := xb[ci*t : (ci+1)*t]
					dxrow := dxb[ci*t : (ci+1)*t]
					wrow := w.Data[(co*in+ci)*k : (co*in+ci)*k+k]
					dwrow := dwS[(co*in+ci)*k : (co*in+ci)*k+k]
					for kk := 0; kk < k; kk++ {
						off := (k - 1 - kk) * d
						wv := wrow[kk]
						acc := 0.0
						for tt := off; tt < t; tt++ {
							g := grow[tt]
							acc += g * xrow[tt-off]
							dxrow[tt-off] += g * wv
						}
						dwrow[kk] += acc
					}
				}
			}
		}
	}
	if b*out*in*k*t < parFlops {
		for shard := 0; shard < shards; shard++ {
			lo := shard * convBatchGrain
			hi := lo + convBatchGrain
			if hi > b {
				hi = b
			}
			run(shard, lo, hi)
		}
	} else {
		par.RunChunks(b, convBatchGrain, run)
	}

	// Deterministic reduction: fold shards in index order.
	for shard := 0; shard < shards; shard++ {
		dwS := dwShards[shard*per : (shard+1)*per]
		for i, v := range dwS {
			dW.Data[i] += v
		}
		dbS := dbShards[shard*out : (shard+1)*out]
		for co, v := range dbS {
			c.B.Grad.Data[co] += v
		}
	}
	c.accumulateKernelGrad(dW)
	return dx
}

// accumulateKernelGrad routes the gradient w.r.t. the effective kernel into
// either W directly or through the weight-normalization reparameterization.
func (c *CausalConv1D) accumulateKernelGrad(dW *tensor.Tensor) {
	if !c.WeightNorm {
		c.W.Grad.AddInPlace(dW)
		return
	}
	in, k, out := c.InChannels, c.KernelSize, c.OutChannels
	per := in * k
	for co := 0; co < out; co++ {
		base := co * per
		n := c.vNorms[co]
		g := c.G.Value.Data[co]
		// dg = dW · (V/‖V‖)
		dot := 0.0
		for i := 0; i < per; i++ {
			dot += dW.Data[base+i] * c.V.Value.Data[base+i]
		}
		dg := dot / n
		c.G.Grad.Data[co] += dg
		// dV = g/‖V‖ · dW − g·(dW·V)/‖V‖³ · V
		a := g / n
		bcoef := g * dot / (n * n * n)
		for i := 0; i < per; i++ {
			c.V.Grad.Data[base+i] += a*dW.Data[base+i] - bcoef*c.V.Value.Data[base+i]
		}
	}
}

// Params implements Layer.
func (c *CausalConv1D) Params() []*Param {
	if c.WeightNorm {
		return []*Param{c.V, c.G, c.B}
	}
	return []*Param{c.W, c.B}
}

// ReceptiveField returns the number of past samples (including the current
// one) that influence one output sample: (K−1)·d + 1.
func (c *CausalConv1D) ReceptiveField() int {
	return (c.KernelSize-1)*c.Dilation + 1
}
