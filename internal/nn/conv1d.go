package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// CausalConv1D is a dilated causal 1-D convolution (the paper's eq. 3–4).
// Input and output have layout [batch, channels, time]; the output length
// equals the input length thanks to left zero-padding of (K−1)·d samples,
// so no future sample ever influences the present (causality).
//
// With weight normalization enabled (as in the paper's residual blocks,
// Fig. 6) the effective kernel is W = g · V/‖V‖, where the norm is taken
// per output channel; g and V are the trainable parameters.
type CausalConv1D struct {
	InChannels  int
	OutChannels int
	KernelSize  int
	Dilation    int
	WeightNorm  bool

	// Direct parameterization (WeightNorm == false).
	W *Param // [out, in, k]
	// Weight-normalized parameterization (WeightNorm == true).
	V *Param // [out, in, k] direction
	G *Param // [out] magnitude
	B *Param // [out] bias

	x       *tensor.Tensor // cached input
	wEff    *tensor.Tensor // effective kernel used in the last forward
	vNorms  []float64      // per-output-channel ‖V‖ from the last forward
	padLeft int
}

// NewCausalConv1D builds the layer with He-normal initialization
// (fan-in = inChannels·kernelSize, matching the ReLU blocks it feeds).
func NewCausalConv1D(r *tensor.RNG, in, out, kernel, dilation int, weightNorm bool) *CausalConv1D {
	if kernel < 1 || dilation < 1 {
		panic(fmt.Sprintf("nn: invalid conv kernel=%d dilation=%d", kernel, dilation))
	}
	c := &CausalConv1D{
		InChannels:  in,
		OutChannels: out,
		KernelSize:  kernel,
		Dilation:    dilation,
		WeightNorm:  weightNorm,
		B:           NewParam("conv.B", tensor.New(out)),
		padLeft:     (kernel - 1) * dilation,
	}
	w := HeNormal(r, in*kernel, out, in, kernel)
	if weightNorm {
		// Initialize g to the norms of the He-initialized kernel so that the
		// effective weights at step 0 equal the plain initialization.
		c.V = NewParam("conv.V", w)
		g := tensor.New(out)
		for co := 0; co < out; co++ {
			g.Data[co] = kernelNorm(w, co, in, kernel)
		}
		c.G = NewParam("conv.G", g)
	} else {
		c.W = NewParam("conv.W", w)
	}
	return c
}

// kernelNorm returns ‖V[co]‖₂ over the (in, k) slice for output channel co.
func kernelNorm(v *tensor.Tensor, co, in, k int) float64 {
	base := co * in * k
	s := 0.0
	for i := 0; i < in*k; i++ {
		x := v.Data[base+i]
		s += x * x
	}
	return math.Sqrt(s)
}

// effectiveKernel computes W from (V, g) under weight normalization, or
// returns the direct W.
func (c *CausalConv1D) effectiveKernel() *tensor.Tensor {
	if !c.WeightNorm {
		return c.W.Value
	}
	in, k, out := c.InChannels, c.KernelSize, c.OutChannels
	w := tensor.New(out, in, k)
	if cap(c.vNorms) < out {
		c.vNorms = make([]float64, out)
	}
	c.vNorms = c.vNorms[:out]
	for co := 0; co < out; co++ {
		n := kernelNorm(c.V.Value, co, in, k)
		if n < 1e-12 {
			n = 1e-12
		}
		c.vNorms[co] = n
		scale := c.G.Value.Data[co] / n
		base := co * in * k
		for i := 0; i < in*k; i++ {
			w.Data[base+i] = c.V.Value.Data[base+i] * scale
		}
	}
	return w
}

// Forward implements Layer.
func (c *CausalConv1D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Dims() != 3 {
		panic(fmt.Sprintf("nn: CausalConv1D requires [batch, channels, time], got %v", x.Shape()))
	}
	if x.Dim(1) != c.InChannels {
		panic(fmt.Sprintf("nn: CausalConv1D channel mismatch: input %d, layer %d", x.Dim(1), c.InChannels))
	}
	c.x = x
	w := c.effectiveKernel()
	c.wEff = w
	b, t := x.Dim(0), x.Dim(2)
	in, out, k, d := c.InChannels, c.OutChannels, c.KernelSize, c.Dilation
	y := tensor.New(b, out, t)
	for bi := 0; bi < b; bi++ {
		xb := x.Data[bi*in*t : (bi+1)*in*t]
		yb := y.Data[bi*out*t : (bi+1)*out*t]
		for co := 0; co < out; co++ {
			yrow := yb[co*t : (co+1)*t]
			bias := c.B.Value.Data[co]
			for i := range yrow {
				yrow[i] = bias
			}
			for ci := 0; ci < in; ci++ {
				xrow := xb[ci*t : (ci+1)*t]
				wrow := w.Data[(co*in+ci)*k : (co*in+ci)*k+k]
				for kk := 0; kk < k; kk++ {
					wv := wrow[kk]
					if wv == 0 {
						continue
					}
					// Tap offset from the present: (K−1−kk)·d samples back.
					off := (k - 1 - kk) * d
					for tt := off; tt < t; tt++ {
						yrow[tt] += wv * xrow[tt-off]
					}
				}
			}
		}
	}
	return y
}

// Backward implements Layer.
func (c *CausalConv1D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := c.x
	b, t := x.Dim(0), x.Dim(2)
	in, out, k, d := c.InChannels, c.OutChannels, c.KernelSize, c.Dilation
	w := c.wEff
	dW := tensor.New(out, in, k)
	dx := tensor.New(b, in, t)
	for bi := 0; bi < b; bi++ {
		xb := x.Data[bi*in*t : (bi+1)*in*t]
		gb := grad.Data[bi*out*t : (bi+1)*out*t]
		dxb := dx.Data[bi*in*t : (bi+1)*in*t]
		for co := 0; co < out; co++ {
			grow := gb[co*t : (co+1)*t]
			// Bias gradient.
			s := 0.0
			for _, g := range grow {
				s += g
			}
			c.B.Grad.Data[co] += s
			for ci := 0; ci < in; ci++ {
				xrow := xb[ci*t : (ci+1)*t]
				dxrow := dxb[ci*t : (ci+1)*t]
				wrow := w.Data[(co*in+ci)*k : (co*in+ci)*k+k]
				dwrow := dW.Data[(co*in+ci)*k : (co*in+ci)*k+k]
				for kk := 0; kk < k; kk++ {
					off := (k - 1 - kk) * d
					wv := wrow[kk]
					acc := 0.0
					for tt := off; tt < t; tt++ {
						g := grow[tt]
						acc += g * xrow[tt-off]
						dxrow[tt-off] += g * wv
					}
					dwrow[kk] += acc
				}
			}
		}
	}
	c.accumulateKernelGrad(dW)
	return dx
}

// accumulateKernelGrad routes the gradient w.r.t. the effective kernel into
// either W directly or through the weight-normalization reparameterization.
func (c *CausalConv1D) accumulateKernelGrad(dW *tensor.Tensor) {
	if !c.WeightNorm {
		c.W.Grad.AddInPlace(dW)
		return
	}
	in, k, out := c.InChannels, c.KernelSize, c.OutChannels
	per := in * k
	for co := 0; co < out; co++ {
		base := co * per
		n := c.vNorms[co]
		g := c.G.Value.Data[co]
		// dg = dW · (V/‖V‖)
		dot := 0.0
		for i := 0; i < per; i++ {
			dot += dW.Data[base+i] * c.V.Value.Data[base+i]
		}
		dg := dot / n
		c.G.Grad.Data[co] += dg
		// dV = g/‖V‖ · dW − g·(dW·V)/‖V‖³ · V
		a := g / n
		bcoef := g * dot / (n * n * n)
		for i := 0; i < per; i++ {
			c.V.Grad.Data[base+i] += a*dW.Data[base+i] - bcoef*c.V.Value.Data[base+i]
		}
	}
}

// Params implements Layer.
func (c *CausalConv1D) Params() []*Param {
	if c.WeightNorm {
		return []*Param{c.V, c.G, c.B}
	}
	return []*Param{c.W, c.B}
}

// ReceptiveField returns the number of past samples (including the current
// one) that influence one output sample: (K−1)·d + 1.
func (c *CausalConv1D) ReceptiveField() int {
	return (c.KernelSize-1)*c.Dilation + 1
}
