package nn

import (
	"math"

	"repro/internal/tensor"
)

// XavierUniform fills a new tensor with draws from U[-a, a] where
// a = sqrt(6/(fanIn+fanOut)) (Glorot & Bengio 2010). Used for tanh/sigmoid
// layers such as LSTM and attention.
func XavierUniform(r *tensor.RNG, fanIn, fanOut int, shape ...int) *tensor.Tensor {
	a := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return tensor.RandUniform(r, -a, a, shape...)
}

// HeNormal fills a new tensor with N(0, sqrt(2/fanIn)) draws
// (He et al. 2015). Used for ReLU layers such as the temporal blocks.
func HeNormal(r *tensor.RNG, fanIn int, shape ...int) *tensor.Tensor {
	std := math.Sqrt(2.0 / float64(fanIn))
	t := tensor.RandN(r, shape...)
	return t.ScaleInPlace(std)
}
