package nn

import "repro/internal/tensor"

// TemporalBlock is the residual block of the TCN (Fig. 6 of the paper):
// two weight-normalized dilated causal convolutions, each followed by ReLU
// and spatial dropout, plus a residual connection (with a 1×1 convolution
// when channel counts differ) and a final activation:
//
//	o = ReLU(x + F(x))   (eq. 5)
type TemporalBlock struct {
	conv1, conv2 *CausalConv1D
	relu1, relu2 ReLU
	drop1, drop2 *SpatialDropout1D
	downsample   *CausalConv1D // 1×1 conv; nil when in == out channels
	finalReLU    ReLU
}

// TemporalBlockConfig holds the hyperparameters of one block.
type TemporalBlockConfig struct {
	InChannels  int
	OutChannels int
	KernelSize  int
	Dilation    int
	Dropout     float64
	WeightNorm  bool
}

// NewTemporalBlock constructs the block.
func NewTemporalBlock(r *tensor.RNG, cfg TemporalBlockConfig) *TemporalBlock {
	b := &TemporalBlock{
		conv1: NewCausalConv1D(r, cfg.InChannels, cfg.OutChannels, cfg.KernelSize, cfg.Dilation, cfg.WeightNorm),
		conv2: NewCausalConv1D(r, cfg.OutChannels, cfg.OutChannels, cfg.KernelSize, cfg.Dilation, cfg.WeightNorm),
		drop1: NewSpatialDropout1D(r, cfg.Dropout),
		drop2: NewSpatialDropout1D(r, cfg.Dropout),
	}
	if cfg.InChannels != cfg.OutChannels {
		b.downsample = NewCausalConv1D(r, cfg.InChannels, cfg.OutChannels, 1, 1, false)
	}
	return b
}

// Forward implements Layer.
func (b *TemporalBlock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	h := b.conv1.Forward(x, train)
	h = b.relu1.Forward(h, train)
	h = b.drop1.Forward(h, train)
	h = b.conv2.Forward(h, train)
	h = b.relu2.Forward(h, train)
	h = b.drop2.Forward(h, train)
	res := x
	if b.downsample != nil {
		res = b.downsample.Forward(x, train)
	}
	return b.finalReLU.Forward(h.Add(res), train)
}

// Backward implements Layer.
func (b *TemporalBlock) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := b.finalReLU.Backward(grad)
	// Branch F(x).
	gf := b.drop2.Backward(g)
	gf = b.relu2.Backward(gf)
	gf = b.conv2.Backward(gf)
	gf = b.drop1.Backward(gf)
	gf = b.relu1.Backward(gf)
	dx := b.conv1.Backward(gf)
	// Residual branch.
	if b.downsample != nil {
		dx.AddInPlace(b.downsample.Backward(g))
	} else {
		dx.AddInPlace(g)
	}
	return dx
}

// Params implements Layer.
func (b *TemporalBlock) Params() []*Param {
	ps := append(b.conv1.Params(), b.conv2.Params()...)
	if b.downsample != nil {
		ps = append(ps, b.downsample.Params()...)
	}
	return ps
}

// ReceptiveField returns the past horizon covered by the block's two
// convolutions: 2·(K−1)·d + 1 samples.
func (b *TemporalBlock) ReceptiveField() int {
	return b.conv1.ReceptiveField() + b.conv2.ReceptiveField() - 1
}

// TCN stacks temporal blocks with exponentially growing dilations
// (1, 2, 4, ... by default), the standard architecture of Bai et al. that
// RPTCN extends.
type TCN struct {
	Blocks []*TemporalBlock
}

// TCNConfig configures a TCN stack.
type TCNConfig struct {
	InChannels int
	Channels   []int // output channels per block
	KernelSize int
	Dilations  []int // one per block; defaults to 1,2,4,... when nil
	Dropout    float64
	WeightNorm bool
}

// NewTCN builds the stack.
func NewTCN(r *tensor.RNG, cfg TCNConfig) *TCN {
	t := &TCN{}
	in := cfg.InChannels
	for i, out := range cfg.Channels {
		d := 1 << i
		if cfg.Dilations != nil {
			d = cfg.Dilations[i]
		}
		t.Blocks = append(t.Blocks, NewTemporalBlock(r, TemporalBlockConfig{
			InChannels:  in,
			OutChannels: out,
			KernelSize:  cfg.KernelSize,
			Dilation:    d,
			Dropout:     cfg.Dropout,
			WeightNorm:  cfg.WeightNorm,
		}))
		in = out
	}
	return t
}

// Forward implements Layer.
func (t *TCN) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, b := range t.Blocks {
		x = b.Forward(x, train)
	}
	return x
}

// Backward implements Layer.
func (t *TCN) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(t.Blocks) - 1; i >= 0; i-- {
		grad = t.Blocks[i].Backward(grad)
	}
	return grad
}

// Params implements Layer.
func (t *TCN) Params() []*Param {
	var ps []*Param
	for _, b := range t.Blocks {
		ps = append(ps, b.Params()...)
	}
	return ps
}

// ReceptiveField returns the total past horizon of the stack.
func (t *TCN) ReceptiveField() int {
	rf := 1
	for _, b := range t.Blocks {
		rf += b.ReceptiveField() - 1
	}
	return rf
}
