package nn

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/tensor"
)

func TestProfiledPreservesSemantics(t *testing.T) {
	r := tensor.NewRNG(7)
	plain := NewDense(r, 4, 3)
	wrapped := NewProfiler().Wrap("dense", plain).(*Profiled)

	x := tensor.New(2, 4)
	for i := range x.Data {
		x.Data[i] = float64(i) * 0.1
	}
	out := wrapped.Forward(x, true)
	grad := tensor.New(out.Shape()...)
	for i := range grad.Data {
		grad.Data[i] = 1
	}
	wrapped.Backward(grad)

	// Params must be the wrapped layer's own (same pointers), so
	// optimizers and serialization see through the wrapper.
	ps, inner := wrapped.Params(), plain.Params()
	if len(ps) != len(inner) {
		t.Fatalf("params: %d vs %d", len(ps), len(inner))
	}
	for i := range ps {
		if ps[i] != inner[i] {
			t.Fatalf("param %d not shared through wrapper", i)
		}
	}
	if wrapped.Unwrap() != Layer(plain) {
		t.Fatal("Unwrap lost the inner layer")
	}
}

func TestProfilerAccumulates(t *testing.T) {
	p := NewProfiler()
	r := tensor.NewRNG(1)
	l := p.Wrap("fc", NewDense(r, 8, 8))
	x := tensor.New(4, 8)
	for i := 0; i < 5; i++ {
		out := l.Forward(x, true)
		l.Backward(tensor.New(out.Shape()...))
	}
	stats := p.Stats()
	if len(stats) != 1 {
		t.Fatalf("got %d entries", len(stats))
	}
	s := stats[0]
	if s.Name != "fc" || s.FwdCalls != 5 || s.BwdCalls != 5 {
		t.Fatalf("bad stats: %+v", s)
	}
	if s.Fwd <= 0 || s.Bwd <= 0 {
		t.Fatalf("no time accumulated: %+v", s)
	}
	p.Reset()
	if got := p.Stats()[0]; got.FwdCalls != 0 || got.Fwd != 0 {
		t.Fatalf("Reset did not zero: %+v", got)
	}
}

func TestProfilerSharedNameMergesAndIsConcurrencySafe(t *testing.T) {
	p := NewProfiler()
	r := tensor.NewRNG(2)
	a := p.Wrap("dense", NewDense(r, 4, 4))
	b := p.Wrap("dense", NewDense(r, 4, 4))
	x := tensor.New(1, 4)
	var wg sync.WaitGroup
	for _, l := range []Layer{a, b} {
		wg.Add(1)
		go func(l Layer) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Forward(x, false)
			}
		}(l)
	}
	done := make(chan struct{})
	go func() { // concurrent reader under -race
		defer close(done)
		for i := 0; i < 50; i++ {
			p.Stats()
			p.Table()
		}
	}()
	wg.Wait()
	<-done
	stats := p.Stats()
	if len(stats) != 1 {
		t.Fatalf("duplicate name created %d entries", len(stats))
	}
	if stats[0].FwdCalls != 200 {
		t.Fatalf("merged calls = %d, want 200", stats[0].FwdCalls)
	}
}

func TestNilProfilerIsPassthrough(t *testing.T) {
	var p *Profiler
	r := tensor.NewRNG(3)
	l := NewDense(r, 2, 2)
	if got := p.Wrap("x", l); got != Layer(l) {
		t.Fatal("nil profiler must return the layer unchanged")
	}
	p.WrapSequential(NewSequential(l)) // must not panic
}

func TestWrapSequentialNamesByKind(t *testing.T) {
	p := NewProfiler()
	r := tensor.NewRNG(4)
	s := NewSequential(
		NewLSTM(r, 2, 4, false),
		NewDense(r, 4, 1),
	)
	p.WrapSequential(s)
	for _, l := range s.Layers {
		if _, ok := l.(*Profiled); !ok {
			t.Fatalf("layer %T not wrapped", l)
		}
	}
	x := tensor.New(1, 2, 6)
	s.Forward(x, false)
	stats := p.Stats()
	if len(stats) != 2 || stats[0].Name != "0:lstm" || stats[1].Name != "1:dense" {
		t.Fatalf("unexpected names: %+v", stats)
	}
	table := p.Table()
	if !strings.Contains(table, "0:lstm") || !strings.Contains(table, "share") {
		t.Fatalf("table missing content:\n%s", table)
	}
}
