package nn

import (
	"fmt"
	"math"
	"time"

	"repro/internal/par"
	"repro/internal/tensor"
)

// This file holds the float32 serving tier: Quantize32 weight-mirror
// refreshes and the InferForward32 arena path for every layer the
// RPTCN/LSTM/CNN-LSTM models use. Each implementation repeats the
// structure of its f64 InferForward — same kernels, same evaluation
// order, same parallel split points — in float32 arithmetic. The output
// approximates the f64 forward within the quantization error bound
// pinned in the tests, and is itself bitwise deterministic: every matmul
// element is one ascending-k float32 FMA chain and every activation is
// element-independent, so identical inputs give identical bits at any
// worker count or batch size.

func sigmoid32(v float32) float32 { return float32(1 / (1 + math.Exp(-float64(v)))) }

func tanh32(v float32) float32 { return float32(math.Tanh(float64(v))) }

// ---- Dense ----

// Quantize32 implements Quantizer32.
func (d *Dense) Quantize32() {
	if d.w32 == nil {
		d.w32 = d.W.Value.To32()
		d.b32 = d.B.Value.To32()
		return
	}
	d.w32.QuantizeFrom(d.W.Value)
	d.b32.QuantizeFrom(d.B.Value)
}

// InferForward32 implements Infer32Layer.
func (d *Dense) InferForward32(a *InferArena32, x *tensor.Tensor32) *tensor.Tensor32 {
	if d.w32 == nil {
		panic("nn: Dense.InferForward32 before Quantize32")
	}
	if x.Dims() != 2 {
		panic(fmt.Sprintf("nn: Dense requires [batch, features], got %v", x.Shape()))
	}
	out := a.Get(x.Dim(0), d.w32.Dim(0))
	x.MatMulTInto(d.w32, out)
	return out.AddRowVectorInPlace(d.b32)
}

// ---- CausalConv1D ----

// Quantize32 implements Quantizer32: it bakes the effective kernel
// (weight norm applied) into the transposed [in·k, out] layout the GEMM
// consumes, so the f32 forward does neither the normalization nor the
// transpose per call.
func (c *CausalConv1D) Quantize32() {
	in, k, out := c.InChannels, c.KernelSize, c.OutChannels
	kk := in * k
	w := c.effectiveKernel()
	if c.wt32 == nil {
		c.wt32 = tensor.New32(kk, out)
		c.b32 = tensor.New32(out)
	}
	for p := 0; p < kk; p++ {
		wrow := c.wt32.Data[p*out : (p+1)*out]
		for co := 0; co < out; co++ {
			wrow[co] = float32(w.Data[co*kk+p])
		}
	}
	c.b32.QuantizeFrom(c.B.Value)
}

// InferForward32 implements Infer32Layer.
func (c *CausalConv1D) InferForward32(a *InferArena32, x *tensor.Tensor32) *tensor.Tensor32 {
	if c.wt32 == nil {
		panic("nn: CausalConv1D.InferForward32 before Quantize32")
	}
	if x.Dims() != 3 {
		panic(fmt.Sprintf("nn: CausalConv1D requires [batch, channels, time], got %v", x.Shape()))
	}
	if x.Dim(1) != c.InChannels {
		panic(fmt.Sprintf("nn: CausalConv1D channel mismatch: input %d, layer %d", x.Dim(1), c.InChannels))
	}
	b, t := x.Dim(0), x.Dim(2)
	in, out, k := c.InChannels, c.OutChannels, c.KernelSize
	acol := a.Get(in*k, b*t)
	ycol := a.Get(b*t, out)
	y := a.Get(b, out, t)
	c.convGemm32(x, acol, ycol, y)
	return y
}

// convGemm32 mirrors convGemm for the quantized kernel: unroll the input
// into columns, seed the output rows with the f32 bias, run one packed
// f32 GEMM (each output sample a single ascending FMA chain), and
// scatter back to [batch, channel, time].
func (c *CausalConv1D) convGemm32(x, acol, ycol, y *tensor.Tensor32) {
	in, out, k := c.InChannels, c.OutChannels, c.KernelSize
	b, t := x.Dim(0), x.Dim(2)
	kk, m := in*k, b*t

	if c.colRun32 == nil {
		c.colRun32 = func(lo, hi int) { c.unrollCols32(c.gemmX32, c.gemmAcol32, lo, hi) }
		c.outRun32 = func(lo, hi int) { c.scatterRows32(c.gemmYcol32, c.gemmY32, lo, hi) }
	}
	c.gemmX32, c.gemmAcol32, c.gemmYcol32, c.gemmY32 = x, acol, ycol, y
	if kk*m < parFlops {
		c.unrollCols32(x, acol, 0, kk)
	} else {
		par.Run(kk, c.colRun32)
	}

	bias := c.b32.Data[:out]
	for i := 0; i < m; i++ {
		copy(ycol.Data[i*out:(i+1)*out], bias)
	}
	acol.TMatMulAcc(c.wt32, ycol)

	units := b * out
	if m*out < parFlops {
		c.scatterRows32(ycol, y, 0, units)
	} else {
		par.Run(units, c.outRun32)
	}
}

// unrollCols32 mirrors unrollCols in float32.
func (c *CausalConv1D) unrollCols32(x, acol *tensor.Tensor32, lo, hi int) {
	in, k, d := c.InChannels, c.KernelSize, c.Dilation
	b, t := x.Dim(0), x.Dim(2)
	for p := lo; p < hi; p++ {
		ci, kk := p/k, p%k
		off := (k - 1 - kk) * d
		if off > t {
			off = t
		}
		dst := acol.Data[p*b*t : (p+1)*b*t]
		for bi := 0; bi < b; bi++ {
			seg := dst[bi*t : (bi+1)*t]
			for i := 0; i < off; i++ {
				seg[i] = 0
			}
			xrow := x.Data[(bi*in+ci)*t : (bi*in+ci)*t+t]
			copy(seg[off:], xrow[:t-off])
		}
	}
}

// scatterRows32 mirrors scatterRows in float32.
func (c *CausalConv1D) scatterRows32(ycol, y *tensor.Tensor32, lo, hi int) {
	out := c.OutChannels
	t := y.Dim(2)
	for u := lo; u < hi; u++ {
		bi, co := u/out, u%out
		yrow := y.Data[u*t : (u+1)*t]
		base := bi*t*out + co
		for tt := 0; tt < t; tt++ {
			yrow[tt] = ycol.Data[base+tt*out]
		}
	}
}

// ---- LSTM ----

// Quantize32 implements Quantizer32.
func (l *LSTM) Quantize32() {
	if l.wx32 == nil {
		l.wx32 = l.Wx.Value.To32()
		l.wh32 = l.Wh.Value.To32()
		l.b32 = l.B.Value.To32()
		return
	}
	l.wx32.QuantizeFrom(l.Wx.Value)
	l.wh32.QuantizeFrom(l.Wh.Value)
	l.b32.QuantizeFrom(l.B.Value)
}

// InferForward32 implements Infer32Layer.
func (l *LSTM) InferForward32(a *InferArena32, x *tensor.Tensor32) *tensor.Tensor32 {
	if l.wx32 == nil {
		panic("nn: LSTM.InferForward32 before Quantize32")
	}
	if x.Dims() != 3 {
		panic(fmt.Sprintf("nn: LSTM requires [batch, features, time], got %v", x.Shape()))
	}
	if x.Dim(1) != l.InFeatures {
		panic(fmt.Sprintf("nn: LSTM feature mismatch: input %d, layer %d", x.Dim(1), l.InFeatures))
	}
	b, T := x.Dim(0), x.Dim(2)
	H, F := l.Hidden, l.InFeatures
	xAll := a.Get(T*b, F)
	zAll := a.Get(T*b, 4*H)
	zh := a.Get(b, 4*H)
	hPrev, cPrev := a.Get(b, H), a.Get(b, H)
	hNext, cNext := a.Get(b, H), a.Get(b, H)
	var seq *tensor.Tensor32
	if l.ReturnSequences {
		seq = a.Get(b, H, T)
	}

	gatherTimeMajor32(xAll, x, b, F, T)
	xAll.MatMulTInto(l.wx32, zAll)
	hPrev.Zero()
	cPrev.Zero()

	bias := l.b32.Data
	for t := 0; t < T; t++ {
		hPrev.MatMulTInto(l.wh32, zh)
		base := t * b
		for bi := 0; bi < b; bi++ {
			zrow := zAll.Data[(base+bi)*4*H : (base+bi+1)*4*H]
			zhrow := zh.Data[bi*4*H : (bi+1)*4*H]
			cPrevRow := cPrev.Data[bi*H : (bi+1)*H]
			cNewRow := cNext.Data[bi*H : (bi+1)*H]
			hNewRow := hNext.Data[bi*H : (bi+1)*H]
			for j := 0; j < H; j++ {
				iv := sigmoid32(zrow[j] + zhrow[j] + bias[j])
				fv := sigmoid32(zrow[H+j] + zhrow[H+j] + bias[H+j])
				gv := tanh32(zrow[2*H+j] + zhrow[2*H+j] + bias[2*H+j])
				ov := sigmoid32(zrow[3*H+j] + zhrow[3*H+j] + bias[3*H+j])
				cv := fv*cPrevRow[j] + iv*gv
				cNewRow[j] = cv
				tc := tanh32(cv)
				hNewRow[j] = ov * tc
			}
			if seq != nil {
				for j := 0; j < H; j++ {
					seq.Data[(bi*H+j)*T+t] = hNewRow[j]
				}
			}
		}
		hPrev, hNext = hNext, hPrev
		cPrev, cNext = cNext, cPrev
	}
	if seq != nil {
		return seq
	}
	return hPrev // holds h_T after the final swap
}

// gatherTimeMajor32 mirrors gatherTimeMajor in float32.
func gatherTimeMajor32(dst, x *tensor.Tensor32, b, f, t int) {
	if t*b*f < parFlops {
		gatherTimeMajor32Range(dst, x, b, f, t, 0, t*b)
		return
	}
	par.Run(t*b, func(lo, hi int) { gatherTimeMajor32Range(dst, x, b, f, t, lo, hi) })
}

func gatherTimeMajor32Range(dst, x *tensor.Tensor32, b, f, t, lo, hi int) {
	for r := lo; r < hi; r++ {
		tt, bi := r/b, r%b
		row := dst.Data[r*f : (r+1)*f]
		for fi := 0; fi < f; fi++ {
			row[fi] = x.Data[(bi*f+fi)*t+tt]
		}
	}
}

// ---- GRU ----

// Quantize32 implements Quantizer32. The stacked Wh is pre-split into
// its (r,z) rows [0,2H) and candidate rows [2H,3H) so the per-step
// matmuls read contiguous mirrors.
func (l *GRU) Quantize32() {
	H := l.Hidden
	if l.wx32 == nil {
		l.wx32 = l.Wx.Value.To32()
		l.whRZ32 = tensor.New32(2*H, H)
		l.whC32 = tensor.New32(H, H)
		l.b32 = l.B.Value.To32()
	} else {
		l.wx32.QuantizeFrom(l.Wx.Value)
		l.b32.QuantizeFrom(l.B.Value)
	}
	wh := l.Wh.Value.Data
	for i := range l.whRZ32.Data {
		l.whRZ32.Data[i] = float32(wh[i])
	}
	off := 2 * H * H
	for i := range l.whC32.Data {
		l.whC32.Data[i] = float32(wh[off+i])
	}
}

// InferForward32 implements Infer32Layer.
func (l *GRU) InferForward32(a *InferArena32, x *tensor.Tensor32) *tensor.Tensor32 {
	if l.wx32 == nil {
		panic("nn: GRU.InferForward32 before Quantize32")
	}
	if x.Dims() != 3 {
		panic(fmt.Sprintf("nn: GRU requires [batch, features, time], got %v", x.Shape()))
	}
	if x.Dim(1) != l.InFeatures {
		panic(fmt.Sprintf("nn: GRU feature mismatch: input %d, layer %d", x.Dim(1), l.InFeatures))
	}
	b, T := x.Dim(0), x.Dim(2)
	H, F := l.Hidden, l.InFeatures
	xAll := a.Get(T*b, F)
	zxAll := a.Get(T*b, 3*H)
	zhRZ := a.Get(b, 2*H)
	zhC := a.Get(b, H)
	rh := a.Get(b, H)
	zg := a.Get(b, H)
	hPrev, hNext := a.Get(b, H), a.Get(b, H)
	var seq *tensor.Tensor32
	if l.ReturnSequences {
		seq = a.Get(b, H, T)
	}

	gatherTimeMajor32(xAll, x, b, F, T)
	xAll.MatMulTInto(l.wx32, zxAll)
	hPrev.Zero()

	bias := l.b32.Data
	for t := 0; t < T; t++ {
		hPrev.MatMulTInto(l.whRZ32, zhRZ)
		base := t * b
		for bi := 0; bi < b; bi++ {
			zxrow := zxAll.Data[(base+bi)*3*H : (base+bi+1)*3*H]
			zhrow := zhRZ.Data[bi*2*H : (bi+1)*2*H]
			hPrevRow := hPrev.Data[bi*H : (bi+1)*H]
			for j := 0; j < H; j++ {
				rv := sigmoid32(zxrow[j] + zhrow[j] + bias[j])
				zv := sigmoid32(zxrow[H+j] + zhrow[H+j] + bias[H+j])
				zg.Data[bi*H+j] = zv
				rh.Data[bi*H+j] = rv * hPrevRow[j]
			}
		}
		rh.MatMulTInto(l.whC32, zhC)
		for bi := 0; bi < b; bi++ {
			zxrow := zxAll.Data[(base+bi)*3*H : (base+bi+1)*3*H]
			hPrevRow := hPrev.Data[bi*H : (bi+1)*H]
			hNewRow := hNext.Data[bi*H : (bi+1)*H]
			for j := 0; j < H; j++ {
				hc := tanh32(zxrow[2*H+j] + zhC.Data[bi*H+j] + bias[2*H+j])
				zv := zg.Data[bi*H+j]
				hNewRow[j] = (1-zv)*hPrevRow[j] + zv*hc
			}
			if seq != nil {
				for j := 0; j < H; j++ {
					seq.Data[(bi*H+j)*T+t] = hNewRow[j]
				}
			}
		}
		hPrev, hNext = hNext, hPrev
	}
	if seq != nil {
		return seq
	}
	return hPrev
}

// ---- FeatureAttention ----

// Quantize32 implements Quantizer32.
func (f *FeatureAttention) Quantize32() {
	if f.w32 == nil {
		f.w32 = f.W.Value.To32()
		f.b32 = f.B.Value.To32()
		return
	}
	f.w32.QuantizeFrom(f.W.Value)
	f.b32.QuantizeFrom(f.B.Value)
}

// InferForward32 implements Infer32Layer.
func (f *FeatureAttention) InferForward32(a *InferArena32, x *tensor.Tensor32) *tensor.Tensor32 {
	if f.w32 == nil {
		panic("nn: FeatureAttention.InferForward32 before Quantize32")
	}
	if x.Dims() != 2 {
		panic(fmt.Sprintf("nn: FeatureAttention requires [batch, features], got %v", x.Shape()))
	}
	scores := a.Get(x.Dim(0), f.w32.Dim(0))
	x.MatMulTInto(f.w32, scores)
	scores.AddRowVectorInPlace(f.b32)
	aw := a.GetLike(scores)
	softmaxRows32Into(scores, aw)
	out := a.GetLike(x)
	for i, v := range aw.Data {
		out.Data[i] = v * x.Data[i]
	}
	return out
}

// softmaxRows32Into mirrors softmaxRowsInto in float32: per-row
// max-subtract, exponentiate, normalize, each row sequential so results
// never depend on the worker count.
func softmaxRows32Into(x, out *tensor.Tensor32) {
	rows, cols := x.Dim(0), x.Dim(1)
	if rows*cols < parFlops/8 {
		softmaxRows32Range(x, out, cols, 0, rows)
	} else {
		par.Run(rows, func(lo, hi int) { softmaxRows32Range(x, out, cols, lo, hi) })
	}
}

func softmaxRows32Range(x, out *tensor.Tensor32, cols, lo, hi int) {
	for r := lo; r < hi; r++ {
		row := x.Data[r*cols : (r+1)*cols]
		orow := out.Data[r*cols : (r+1)*cols]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		sum := float32(0)
		for i, v := range row {
			e := float32(math.Exp(float64(v - maxv)))
			orow[i] = e
			sum += e
		}
		for i := range orow {
			orow[i] /= sum
		}
	}
}

// ---- Activations and shape layers ----

// InferForward32 implements Infer32Layer.
func (r *ReLU) InferForward32(a *InferArena32, x *tensor.Tensor32) *tensor.Tensor32 {
	out := a.GetLike(x)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		} else {
			out.Data[i] = 0
		}
	}
	return out
}

// InferForward32 implements Infer32Layer.
func (t *Tanh) InferForward32(a *InferArena32, x *tensor.Tensor32) *tensor.Tensor32 {
	out := a.GetLike(x)
	for i, v := range x.Data {
		out.Data[i] = tanh32(v)
	}
	return out
}

// InferForward32 implements Infer32Layer.
func (s *Sigmoid) InferForward32(a *InferArena32, x *tensor.Tensor32) *tensor.Tensor32 {
	out := a.GetLike(x)
	for i, v := range x.Data {
		out.Data[i] = sigmoid32(v)
	}
	return out
}

// InferForward32 implements Infer32Layer. Inference-mode dropout is the
// identity.
func (d *Dropout) InferForward32(_ *InferArena32, x *tensor.Tensor32) *tensor.Tensor32 {
	return x
}

// InferForward32 implements Infer32Layer.
func (d *SpatialDropout1D) InferForward32(_ *InferArena32, x *tensor.Tensor32) *tensor.Tensor32 {
	if x.Dims() != 3 {
		panic(fmt.Sprintf("nn: SpatialDropout1D requires [batch, channels, time], got %v", x.Shape()))
	}
	return x
}

// InferForward32 implements Infer32Layer.
func (l *LastStep) InferForward32(a *InferArena32, x *tensor.Tensor32) *tensor.Tensor32 {
	if x.Dims() != 3 {
		panic(fmt.Sprintf("nn: LastStep requires [batch, channels, time], got %v", x.Shape()))
	}
	b, c, t := x.Dim(0), x.Dim(1), x.Dim(2)
	out := a.Get(b, c)
	for i := 0; i < b; i++ {
		for j := 0; j < c; j++ {
			out.Data[i*c+j] = x.Data[(i*c+j)*t+t-1]
		}
	}
	return out
}

// InferForward32 implements Infer32Layer. Like the f64 arena path, the
// result is copied into an arena slot so it does not alias the input.
func (f *Flatten) InferForward32(a *InferArena32, x *tensor.Tensor32) *tensor.Tensor32 {
	batch := x.Dim(0)
	rest := 1
	for i := 1; i < x.Dims(); i++ {
		rest *= x.Dim(i)
	}
	out := a.Get(batch, rest)
	copy(out.Data, x.Data)
	return out
}

// ---- Composites ----

// Quantize32 implements Quantizer32.
func (s *Sequential) Quantize32() {
	for _, l := range s.Layers {
		Quantize32(l)
	}
}

// InferForward32 implements Infer32Layer.
func (s *Sequential) InferForward32(a *InferArena32, x *tensor.Tensor32) *tensor.Tensor32 {
	for _, l := range s.Layers {
		x = Infer32(l, a, x)
	}
	return x
}

// Quantize32 implements Quantizer32.
func (b *TemporalBlock) Quantize32() {
	b.conv1.Quantize32()
	b.conv2.Quantize32()
	if b.downsample != nil {
		b.downsample.Quantize32()
	}
}

// InferForward32 implements Infer32Layer.
func (b *TemporalBlock) InferForward32(a *InferArena32, x *tensor.Tensor32) *tensor.Tensor32 {
	h := b.conv1.InferForward32(a, x)
	h = b.relu1.InferForward32(a, h)
	h = b.drop1.InferForward32(a, h)
	h = b.conv2.InferForward32(a, h)
	h = b.relu2.InferForward32(a, h)
	h = b.drop2.InferForward32(a, h)
	res := x
	if b.downsample != nil {
		res = b.downsample.InferForward32(a, x)
	}
	// Residual add fused with the final ReLU, like the f64 arena path.
	out := a.GetLike(h)
	for i, hv := range h.Data {
		v := hv + res.Data[i]
		if v > 0 {
			out.Data[i] = v
		} else {
			out.Data[i] = 0
		}
	}
	return out
}

// Quantize32 implements Quantizer32.
func (t *TCN) Quantize32() {
	for _, b := range t.Blocks {
		b.Quantize32()
	}
}

// InferForward32 implements Infer32Layer.
func (t *TCN) InferForward32(a *InferArena32, x *tensor.Tensor32) *tensor.Tensor32 {
	for _, b := range t.Blocks {
		x = b.InferForward32(a, x)
	}
	return x
}

// Quantize32 implements Quantizer32.
func (w *Profiled) Quantize32() { Quantize32(w.inner) }

// InferForward32 implements Infer32Layer, timing the wrapped layer's f32
// arena forward into the same counters as training forwards.
func (w *Profiled) InferForward32(a *InferArena32, x *tensor.Tensor32) *tensor.Tensor32 {
	t0 := time.Now()
	out := Infer32(w.inner, a, x)
	w.times.fwdNanos.Add(int64(time.Since(t0)))
	w.times.fwdCalls.Add(1)
	return out
}
