package nn

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/tensor"
)

func buildSerModel(seed uint64) *Sequential {
	r := tensor.NewRNG(seed)
	return NewSequential(
		NewCausalConv1D(r, 1, 4, 3, 1, true),
		&LastStep{},
		NewDense(r, 4, 8),
		&Tanh{},
		NewDense(r, 8, 1),
	)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	src := buildSerModel(1)
	dst := buildSerModel(2) // different weights, same architecture
	x := tensor.RandN(tensor.NewRNG(3), 2, 1, 10)
	before := src.Forward(x, false)
	if dst.Forward(x, false).Equal(before, 1e-9) {
		t.Fatal("differently-seeded models should disagree before load")
	}
	var buf bytes.Buffer
	if err := SaveParams(&buf, src); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, dst); err != nil {
		t.Fatal(err)
	}
	after := dst.Forward(x, false)
	if !after.Equal(before, 0) {
		t.Fatal("loaded model output differs from saved model")
	}
}

func TestLoadParamsRejectsArchitectureMismatch(t *testing.T) {
	src := buildSerModel(1)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src); err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(4)
	wrongCount := NewSequential(NewDense(r, 4, 8))
	if err := LoadParams(bytes.NewReader(buf.Bytes()), wrongCount); err == nil {
		t.Fatal("expected error for param count mismatch")
	}
	wrongShape := NewSequential(
		NewCausalConv1D(r, 1, 4, 3, 1, true),
		&LastStep{},
		NewDense(r, 4, 9), // shape differs
		&Tanh{},
		NewDense(r, 9, 1),
	)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), wrongShape); err == nil {
		t.Fatal("expected error for shape mismatch")
	}
}

func TestLoadParamsRejectsGarbageAndBadFormat(t *testing.T) {
	m := buildSerModel(1)
	if err := LoadParams(strings.NewReader("not json"), m); err == nil {
		t.Fatal("expected error for invalid JSON")
	}
	if err := LoadParams(strings.NewReader(`{"format":99,"params":[]}`), m); err == nil {
		t.Fatal("expected error for unknown format")
	}
}

func TestLoadParamsRejectsNameMismatch(t *testing.T) {
	r := tensor.NewRNG(5)
	src := NewSequential(NewDense(r, 2, 2))
	var buf bytes.Buffer
	if err := SaveParams(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := NewSequential(NewDense(r, 2, 2))
	dst.Params()[0].Name = "renamed"
	if err := LoadParams(&buf, dst); err == nil {
		t.Fatal("expected error for name mismatch")
	}
}
