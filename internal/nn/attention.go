package nn

import (
	"fmt"

	"repro/internal/par"
	"repro/internal/tensor"
)

// FeatureAttention implements the paper's attention head (eq. 7–8):
//
//	a = f_φ(x) = softmax(x·Wᵀ + b)
//	g = a ⊙ x
//
// The attention network f_φ is a single linear map followed by softmax, so
// the layer learns to re-weight the features produced by the fully
// connected layer before the output projection. Input and output are
// [batch, features].
type FeatureAttention struct {
	W *Param // [features, features]
	B *Param // [features]

	x *tensor.Tensor // cached input
	a *tensor.Tensor // cached attention weights

	// Float32 weight mirrors for the f32 serving tier (see infer32.go).
	w32, b32 *tensor.Tensor32
}

// NewFeatureAttention creates the layer for the given feature width.
func NewFeatureAttention(r *tensor.RNG, features int) *FeatureAttention {
	return &FeatureAttention{
		W: NewParam("attn.W", XavierUniform(r, features, features, features, features)),
		B: NewParam("attn.B", tensor.New(features)),
	}
}

// Forward implements Layer.
func (f *FeatureAttention) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Dims() != 2 {
		panic(fmt.Sprintf("nn: FeatureAttention requires [batch, features], got %v", x.Shape()))
	}
	f.x = x
	scores := x.MatMulT(f.W.Value).AddRowVectorInPlace(f.B.Value)
	f.a = softmaxRows(scores)
	return f.a.Mul(x)
}

// Backward implements Layer.
func (f *FeatureAttention) Backward(grad *tensor.Tensor) *tensor.Tensor {
	rows, cols := grad.Dim(0), grad.Dim(1)
	// dL/da = grad ⊙ x ; direct path dL/dx = grad ⊙ a.
	dA := grad.Mul(f.x)
	dx := grad.Mul(f.a)
	// Softmax Jacobian per row: ds_j = a_j (dA_j − Σ_k dA_k a_k). Rows are
	// independent, so the loop parallelizes with each row's dot product
	// reduced sequentially (worker-count independent).
	dS := tensor.New(rows, cols)
	jacobian := func(lo, hi int) {
		for r := lo; r < hi; r++ {
			arow := f.a.Data[r*cols : (r+1)*cols]
			darow := dA.Data[r*cols : (r+1)*cols]
			dsrow := dS.Data[r*cols : (r+1)*cols]
			dot := 0.0
			for j := range arow {
				dot += darow[j] * arow[j]
			}
			for j := range arow {
				dsrow[j] = arow[j] * (darow[j] - dot)
			}
		}
	}
	if rows*cols < parFlops {
		jacobian(0, rows)
	} else {
		par.Run(rows, jacobian)
	}
	// Linear-map gradients and the indirect input path.
	dS.TMatMulAcc(f.x, f.W.Grad)
	dS.SumRowsAcc(f.B.Grad)
	dx.AddInPlace(dS.MatMul(f.W.Value))
	return dx
}

// Params implements Layer.
func (f *FeatureAttention) Params() []*Param { return []*Param{f.W, f.B} }

// Weights returns the attention vector a from the most recent forward pass
// (for inspection/visualization); nil before any forward.
func (f *FeatureAttention) Weights() *tensor.Tensor { return f.a }
