package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestGRUShapes(t *testing.T) {
	r := tensor.NewRNG(1)
	g := NewGRU(r, 3, 5, false)
	x := tensor.RandN(r, 2, 3, 7)
	y := g.Forward(x, false)
	if y.Dim(0) != 2 || y.Dim(1) != 5 {
		t.Fatalf("GRU final-state shape = %v", y.Shape())
	}
	gs := NewGRU(r, 3, 5, true)
	ys := gs.Forward(x, false)
	if ys.Dim(0) != 2 || ys.Dim(1) != 5 || ys.Dim(2) != 7 {
		t.Fatalf("GRU sequence shape = %v", ys.Shape())
	}
}

func TestGRUSequenceLastStepMatchesFinalState(t *testing.T) {
	r := tensor.NewRNG(2)
	a := NewGRU(r, 2, 3, false)
	b := &GRU{InFeatures: 2, Hidden: 3, ReturnSequences: true, Wx: a.Wx, Wh: a.Wh, B: a.B}
	x := tensor.RandN(r, 2, 2, 6)
	h := a.Forward(x, false)
	seq := b.Forward(x, false)
	for bi := 0; bi < 2; bi++ {
		for j := 0; j < 3; j++ {
			if math.Abs(h.At(bi, j)-seq.At(bi, j, 5)) > 1e-12 {
				t.Fatal("sequence last step differs from final state")
			}
		}
	}
}

func TestGRUHiddenStateBounded(t *testing.T) {
	// h is a convex combination of hPrev (starting at 0) and tanh values,
	// so |h| <= 1 always.
	r := tensor.NewRNG(3)
	g := NewGRU(r, 2, 4, true)
	x := tensor.RandN(r, 3, 2, 20).ScaleInPlace(5)
	y := g.Forward(x, false)
	for _, v := range y.Data {
		if math.Abs(v) > 1 {
			t.Fatalf("GRU hidden state out of [-1,1]: %g", v)
		}
	}
}

func TestGRUGradientsLastState(t *testing.T) {
	r := tensor.NewRNG(4)
	g := NewGRU(r, 2, 3, false)
	x := tensor.RandN(r, 2, 2, 5)
	err, detail := GradCheck(g, x, 5, 1e-6)
	if err > 1e-5 {
		t.Fatalf("GRU gradient check failed: relerr=%g at %s", err, detail)
	}
}

func TestGRUGradientsSequences(t *testing.T) {
	r := tensor.NewRNG(6)
	g := NewGRU(r, 2, 2, true)
	x := tensor.RandN(r, 2, 2, 4)
	err, detail := GradCheck(g, x, 7, 1e-6)
	if err > 1e-5 {
		t.Fatalf("GRU sequence gradient check failed: relerr=%g at %s", err, detail)
	}
}

func TestGRUFeatureMismatchPanics(t *testing.T) {
	r := tensor.NewRNG(8)
	g := NewGRU(r, 3, 2, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on feature mismatch")
		}
	}()
	g.Forward(tensor.RandN(r, 1, 2, 4), false)
}
