package nn

import "repro/internal/tensor"

// InferArena is a record/replay bump allocator for the grad-free forward
// path. A model's inference pass requests every intermediate tensor
// through Get in a deterministic order; the arena hands out the same
// preallocated buffers on every subsequent pass over the same shapes, so
// a warmed-up forward performs zero heap allocations.
//
// The arena is shape-checked per slot: if a request's shape differs from
// what the slot holds (the model or batch size changed), the slot is
// reallocated in place and steady state resumes. Callers that serve
// multiple batch sizes should keep one arena per size instead of
// thrashing a single arena's slots.
//
// Contract:
//   - Call Reset once at the start of each forward pass.
//   - Buffers are handed out uncleared; layers must fully overwrite them
//     (all InferForward implementations do).
//   - Tensors returned by Get — including a model's output — are owned by
//     the arena and are only valid until the next Reset.
//   - An arena (and the layers it feeds, which keep per-call kernel state)
//     must not be used from two goroutines at once.
type InferArena struct {
	slots []*tensor.Tensor
	next  int
}

// NewInferArena returns an empty arena; slots are created on first use.
func NewInferArena() *InferArena { return &InferArena{} }

// Reset rewinds the arena so the next Get replays slot 0. Buffers are
// retained.
func (a *InferArena) Reset() { a.next = 0 }

// Slots reports how many distinct buffers the arena holds — a proxy for
// its memory footprint, exposed for tests and diagnostics.
func (a *InferArena) Slots() int { return len(a.slots) }

// Get returns the next tensor slot with the given shape, allocating or
// reallocating only when the slot is missing or shaped differently. On
// the steady-state path (warm slot, matching shape) it performs no heap
// allocation: the variadic shape stays on the caller's stack.
func (a *InferArena) Get(shape ...int) *tensor.Tensor {
	if a.next < len(a.slots) {
		t := a.slots[a.next]
		if t != nil && slotShaped(t, shape) {
			a.next++
			return t
		}
	}
	t := tensor.New(append([]int(nil), shape...)...)
	if a.next < len(a.slots) {
		a.slots[a.next] = t
	} else {
		a.slots = append(a.slots, t)
	}
	a.next++
	return t
}

// GetLike returns the next slot shaped like t, without allocating a
// shape slice.
func (a *InferArena) GetLike(t *tensor.Tensor) *tensor.Tensor {
	var sh [4]int
	n := t.Dims()
	for i := 0; i < n; i++ {
		sh[i] = t.Dim(i)
	}
	return a.Get(sh[:n]...)
}

func slotShaped(t *tensor.Tensor, shape []int) bool {
	if t.Dims() != len(shape) {
		return false
	}
	for i, d := range shape {
		if t.Dim(i) != d {
			return false
		}
	}
	return true
}

// InferLayer is implemented by layers with a dedicated grad-free forward
// that draws every intermediate from an InferArena. InferForward must
// produce output bitwise identical to Forward(x, false) — same kernels,
// same floating-point order — while writing no training caches, so a
// model can serve inference without perturbing a concurrent-free
// training setup and without allocating in steady state.
type InferLayer interface {
	InferForward(a *InferArena, x *tensor.Tensor) *tensor.Tensor
}

// Infer runs one layer's grad-free forward, falling back to
// Forward(x, false) for layers without an arena path. The fallback keeps
// correctness for exotic layers at the cost of their usual allocations.
func Infer(l Layer, a *InferArena, x *tensor.Tensor) *tensor.Tensor {
	if il, ok := l.(InferLayer); ok {
		return il.InferForward(a, x)
	}
	return l.Forward(x, false)
}
