package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// InferArena32 is the float32 twin of InferArena: a record/replay bump
// allocator for the f32 serving tier. The contract is identical — Reset
// once per pass, buffers handed out uncleared and owned by the arena,
// single-goroutine use — with one addition: the float32 path has no
// Forward fallback, so every layer it feeds must implement
// Infer32Layer.
type InferArena32 struct {
	slots []*tensor.Tensor32
	next  int
}

// NewInferArena32 returns an empty arena; slots are created on first use.
func NewInferArena32() *InferArena32 { return &InferArena32{} }

// Reset rewinds the arena so the next Get replays slot 0. Buffers are
// retained.
func (a *InferArena32) Reset() { a.next = 0 }

// Slots reports how many distinct buffers the arena holds.
func (a *InferArena32) Slots() int { return len(a.slots) }

// Get returns the next tensor slot with the given shape, allocating or
// reallocating only when the slot is missing or shaped differently.
func (a *InferArena32) Get(shape ...int) *tensor.Tensor32 {
	if a.next < len(a.slots) {
		t := a.slots[a.next]
		if t != nil && slot32Shaped(t, shape) {
			a.next++
			return t
		}
	}
	t := tensor.New32(append([]int(nil), shape...)...)
	if a.next < len(a.slots) {
		a.slots[a.next] = t
	} else {
		a.slots = append(a.slots, t)
	}
	a.next++
	return t
}

// GetLike returns the next slot shaped like t, without allocating a
// shape slice.
func (a *InferArena32) GetLike(t *tensor.Tensor32) *tensor.Tensor32 {
	var sh [4]int
	n := t.Dims()
	for i := 0; i < n; i++ {
		sh[i] = t.Dim(i)
	}
	return a.Get(sh[:n]...)
}

func slot32Shaped(t *tensor.Tensor32, shape []int) bool {
	if t.Dims() != len(shape) {
		return false
	}
	for i, d := range shape {
		if t.Dim(i) != d {
			return false
		}
	}
	return true
}

// Infer32Layer is implemented by layers with a float32 grad-free forward
// that draws every intermediate from an InferArena32 and reads only the
// float32 weight mirrors refreshed by Quantize32. Unlike the f64 arena
// path, f32 output is not bitwise equal to Forward — it approximates it
// within the quantization error bound pinned by the tests — but it is
// bitwise deterministic in its own right: identical inputs produce
// identical float32 bits at any worker count or batch size.
type Infer32Layer interface {
	InferForward32(a *InferArena32, x *tensor.Tensor32) *tensor.Tensor32
}

// Quantizer32 is implemented by layers carrying float64 parameters that
// must be mirrored into float32 before InferForward32 runs. Quantize32
// is cheap (one rounded copy per weight) and idempotent; call it again
// after any weight update to refresh the mirrors.
type Quantizer32 interface {
	Quantize32()
}

// Quantize32 refreshes l's float32 weight mirrors if it has any.
// Composite layers recurse into their children.
func Quantize32(l Layer) {
	if q, ok := l.(Quantizer32); ok {
		q.Quantize32()
	}
}

// Infer32 runs one layer's float32 arena forward. There is no Forward
// fallback: a layer without an f32 path is a configuration error, not a
// silent downgrade to float64.
func Infer32(l Layer, a *InferArena32, x *tensor.Tensor32) *tensor.Tensor32 {
	if il, ok := l.(Infer32Layer); ok {
		return il.InferForward32(a, x)
	}
	panic(fmt.Sprintf("nn: layer %T has no float32 inference path", l))
}

// SupportsInfer32 reports whether every layer reachable from l has a
// float32 inference path. Composites answer for their children.
func SupportsInfer32(l Layer) bool {
	switch v := l.(type) {
	case *Sequential:
		for _, inner := range v.Layers {
			if !SupportsInfer32(inner) {
				return false
			}
		}
		return true
	case *Profiled:
		return SupportsInfer32(v.inner)
	default:
		_, ok := l.(Infer32Layer)
		return ok
	}
}
