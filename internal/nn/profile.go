package nn

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tensor"
)

// Profiler accumulates per-layer forward/backward wall time through
// Profiled wrappers, so any model — RPTCN's stage pipeline, a baseline
// Sequential — gets a per-layer cost breakdown without editing a single
// layer implementation. Wrap the layers once before training:
//
//	p := nn.NewProfiler()
//	model := nn.NewSequential(
//		p.Wrap("lstm", nn.NewLSTM(r, in, hidden, false)),
//		p.Wrap("out", nn.NewDense(r, hidden, horizon)),
//	)
//	... train ...
//	fmt.Print(p.Table())
//
// Counters are atomics, so concurrent forward passes (e.g. fleet
// training) accumulate correctly; the measured overhead is two
// time.Now calls per wrapped layer per pass.
type Profiler struct {
	mu    sync.Mutex
	order []string
	byKey map[string]*layerTimes
}

// layerTimes holds the atomic counters of one named entry. Wrapping the
// same name twice shares one layerTimes, merging the accumulation.
type layerTimes struct {
	fwdCalls, bwdCalls atomic.Int64
	fwdNanos, bwdNanos atomic.Int64
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{byKey: make(map[string]*layerTimes)}
}

// Wrap registers l under name and returns the timing wrapper. A nil
// Profiler (or nil layer) returns l unchanged, so instrumentation
// points can wrap unconditionally and pay nothing when profiling is
// off. Wrapping the same name twice accumulates into one entry.
func (p *Profiler) Wrap(name string, l Layer) Layer {
	if p == nil || l == nil {
		return l
	}
	p.mu.Lock()
	lt, ok := p.byKey[name]
	if !ok {
		lt = &layerTimes{}
		p.byKey[name] = lt
		p.order = append(p.order, name)
	}
	p.mu.Unlock()
	return &Profiled{name: name, inner: l, times: lt}
}

// WrapSequential replaces every layer of s in place with a profiled
// wrapper named "<index>:<kind>" ("0:lstm", "1:dense", ...).
func (p *Profiler) WrapSequential(s *Sequential) {
	if p == nil || s == nil {
		return
	}
	for i, l := range s.Layers {
		s.Layers[i] = p.Wrap(fmt.Sprintf("%d:%s", i, LayerKind(l)), l)
	}
}

// Profiled wraps a Layer and times every Forward/Backward call. It is
// itself a Layer, delegating Params to the wrapped layer, so wrapping
// never changes training semantics or serialized weights.
type Profiled struct {
	name  string
	inner Layer
	times *layerTimes
}

// Forward implements Layer.
func (w *Profiled) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	t0 := time.Now()
	out := w.inner.Forward(x, train)
	w.times.fwdNanos.Add(int64(time.Since(t0)))
	w.times.fwdCalls.Add(1)
	return out
}

// Backward implements Layer.
func (w *Profiled) Backward(grad *tensor.Tensor) *tensor.Tensor {
	t0 := time.Now()
	out := w.inner.Backward(grad)
	w.times.bwdNanos.Add(int64(time.Since(t0)))
	w.times.bwdCalls.Add(1)
	return out
}

// Params implements Layer.
func (w *Profiled) Params() []*Param { return w.inner.Params() }

// Unwrap returns the wrapped layer.
func (w *Profiled) Unwrap() Layer { return w.inner }

// LayerStats is a point-in-time snapshot of one wrapped layer's cost.
type LayerStats struct {
	Name     string
	FwdCalls int64
	BwdCalls int64
	Fwd      time.Duration // total forward time
	Bwd      time.Duration // total backward time
}

// Total returns forward + backward time.
func (s LayerStats) Total() time.Duration { return s.Fwd + s.Bwd }

// Stats returns per-layer totals in wrap order.
func (p *Profiler) Stats() []LayerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]LayerStats, 0, len(p.order))
	for _, name := range p.order {
		lt := p.byKey[name]
		out = append(out, LayerStats{
			Name:     name,
			FwdCalls: lt.fwdCalls.Load(),
			BwdCalls: lt.bwdCalls.Load(),
			Fwd:      time.Duration(lt.fwdNanos.Load()),
			Bwd:      time.Duration(lt.bwdNanos.Load()),
		})
	}
	return out
}

// Reset zeroes all counters (the set of wrapped layers is kept).
func (p *Profiler) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, lt := range p.byKey {
		lt.fwdCalls.Store(0)
		lt.bwdCalls.Store(0)
		lt.fwdNanos.Store(0)
		lt.bwdNanos.Store(0)
	}
}

// Table renders the per-layer breakdown as a fixed-width text table,
// sorted by total time descending, with per-call means and each layer's
// share of the summed layer time.
func (p *Profiler) Table() string {
	stats := p.Stats()
	sort.SliceStable(stats, func(i, j int) bool { return stats[i].Total() > stats[j].Total() })
	var total time.Duration
	for _, s := range stats {
		total += s.Total()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %9s %12s %12s %12s %12s %6s\n",
		"layer", "calls", "fwd total", "fwd/call", "bwd total", "bwd/call", "share")
	for _, s := range stats {
		fwdPer, bwdPer := time.Duration(0), time.Duration(0)
		if s.FwdCalls > 0 {
			fwdPer = s.Fwd / time.Duration(s.FwdCalls)
		}
		if s.BwdCalls > 0 {
			bwdPer = s.Bwd / time.Duration(s.BwdCalls)
		}
		share := 0.0
		if total > 0 {
			share = float64(s.Total()) / float64(total) * 100
		}
		fmt.Fprintf(&b, "%-24s %9d %12s %12s %12s %12s %5.1f%%\n",
			s.Name, s.FwdCalls,
			s.Fwd.Round(time.Microsecond), fwdPer.Round(time.Microsecond),
			s.Bwd.Round(time.Microsecond), bwdPer.Round(time.Microsecond),
			share)
	}
	return b.String()
}

// LayerKind names a layer by its architectural kind ("conv1d", "dense",
// "attention", "lstm", ...), for profile labels and run journals.
func LayerKind(l Layer) string {
	switch v := l.(type) {
	case *Profiled:
		return LayerKind(v.inner)
	case *Dense:
		return "dense"
	case *CausalConv1D:
		return "conv1d"
	case *TemporalBlock:
		return "block"
	case *TCN:
		return "tcn"
	case *LSTM:
		return "lstm"
	case *GRU:
		return "gru"
	case *FeatureAttention:
		return "attention"
	case *SpatialDropout1D:
		return "dropout"
	case *LayerNorm:
		return "layernorm"
	case *ReLU:
		return "relu"
	case *LastStep:
		return "laststep"
	case *Flatten:
		return "flatten"
	case *Sequential:
		return "sequential"
	case *ReverseTime:
		return "reverse"
	default:
		return fmt.Sprintf("%T", l)
	}
}
