package nn

import (
	"math"
	"testing"

	"repro/internal/par"
	"repro/internal/tensor"
)

func requireBitwiseTensors32(t *testing.T, got, want *tensor.Tensor32, what string) {
	t.Helper()
	if got.Size() != want.Size() {
		t.Fatalf("%s: size %d, want %d", what, got.Size(), want.Size())
	}
	for i := range want.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("%s: elem %d = %g, want %g (bits %x vs %x)", what, i,
				got.Data[i], want.Data[i],
				math.Float32bits(got.Data[i]), math.Float32bits(want.Data[i]))
		}
	}
}

// infer32Tol is the error bound the f32 tier is held to against the f64
// oracle in these tests: |f32 − f64| ≤ atol + rtol·|f64| per element.
// Float32 carries 2⁻²⁴ relative error per operation; across the deepest
// stack here (TCN with two residual blocks plus attention) the
// accumulated deviation stays well inside these bounds.
const (
	infer32RTol = 1e-3
	infer32ATol = 1e-4
)

func requireWithinBound32(t *testing.T, got *tensor.Tensor32, want *tensor.Tensor, what string) {
	t.Helper()
	if got.Size() != want.Size() {
		t.Fatalf("%s: size %d, want %d", what, got.Size(), want.Size())
	}
	for i := range want.Data {
		diff := math.Abs(float64(got.Data[i]) - want.Data[i])
		if diff > infer32ATol+infer32RTol*math.Abs(want.Data[i]) {
			t.Fatalf("%s: elem %d = %g, want %g (diff %g exceeds bound)",
				what, i, got.Data[i], want.Data[i], diff)
		}
	}
}

// TestInfer32WithinBoundOfFloat64 quantizes every architecture family
// and demands the f32 arena forward stays inside the documented error
// bound of the f64 training-path forward, across batch sizes and
// repeated (replayed) arena passes.
func TestInfer32WithinBoundOfFloat64(t *testing.T) {
	const features, timeSteps = 4, 12
	for name, model := range inferStacks(features, timeSteps) {
		t.Run(name, func(t *testing.T) {
			if !SupportsInfer32(model) {
				t.Fatalf("%s: SupportsInfer32 = false, want true", name)
			}
			Quantize32(model)
			arena := NewInferArena32()
			for _, batch := range []int{1, 3, 7} {
				r := tensor.NewRNG(uint64(100 + batch))
				x := tensor.RandN(r, batch, features, timeSteps)
				want := model.Forward(x, false)
				x32 := x.To32()
				var first *tensor.Tensor32
				for pass := 0; pass < 3; pass++ {
					arena.Reset()
					got := Infer32(model, arena, x32)
					requireWithinBound32(t, got, want, name)
					if first == nil {
						first = got.Clone()
					} else {
						requireBitwiseTensors32(t, got, first, name+" replay")
					}
				}
			}
		})
	}
}

// TestInfer32WorkerCountInvariance reruns f32 arena inference under 1, 2
// and 4 workers and demands bitwise identical outputs — the determinism
// contract carries over from the f64 tier unchanged.
func TestInfer32WorkerCountInvariance(t *testing.T) {
	const features, timeSteps, batch = 4, 12, 5
	for name, model := range inferStacks(features, timeSteps) {
		t.Run(name, func(t *testing.T) {
			Quantize32(model)
			r := tensor.NewRNG(7)
			x := tensor.RandN(r, batch, features, timeSteps).To32()
			run := func(workers int) *tensor.Tensor32 {
				prev := par.SetWorkers(workers)
				defer par.SetWorkers(prev)
				arena := NewInferArena32()
				return Infer32(model, arena, x).Clone()
			}
			base := run(1)
			for _, w := range []int{2, 4} {
				requireBitwiseTensors32(t, run(w), base, name)
			}
		})
	}
}

// TestQuantize32TracksWeightUpdates checks re-quantizing after a weight
// change refreshes the mirrors in place (no new allocations of the
// mirror tensors) and the f32 forward follows the new weights.
func TestQuantize32TracksWeightUpdates(t *testing.T) {
	const features, timeSteps, batch = 4, 12, 3
	r := tensor.NewRNG(17)
	model := NewSequential(
		NewCausalConv1D(r, features, 6, 3, 1, true),
		&ReLU{},
		NewGRU(r, 6, 5, false),
		NewDense(r, 5, 2),
	)
	Quantize32(model)
	x := tensor.RandN(r, batch, features, timeSteps)
	x32 := x.To32()
	arena := NewInferArena32()
	before := Infer32(model, arena, x32).Clone()

	for _, p := range model.Params() {
		for i := range p.Value.Data {
			p.Value.Data[i] *= 1.25
		}
	}
	Quantize32(model)
	want := model.Forward(x, false)
	arena.Reset()
	after := Infer32(model, arena, x32)
	requireWithinBound32(t, after, want, "after requantize")

	same := true
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("f32 forward unchanged after weight update + requantize")
	}
}

// TestInfer32PanicsWithoutQuantize pins the contract that running the
// f32 path before Quantize32 is a hard error, not a silent fallback.
func TestInfer32PanicsWithoutQuantize(t *testing.T) {
	r := tensor.NewRNG(3)
	model := NewDense(r, 4, 2)
	x := tensor.RandN32(r, 2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from InferForward32 before Quantize32")
		}
	}()
	Infer32(model, NewInferArena32(), x)
}

// TestInfer32DoesNotDisturbTraining interleaves a quantize + f32 arena
// inference between a training forward and its backward pass and checks
// the gradients are bitwise identical to an undisturbed step.
func TestInfer32DoesNotDisturbTraining(t *testing.T) {
	const features, timeSteps, batch = 4, 12, 3
	build := func() Layer {
		r := tensor.NewRNG(21)
		return NewSequential(
			NewCausalConv1D(r, features, 6, 3, 1, true),
			&ReLU{},
			NewLSTM(r, 6, 5, false),
			NewDense(r, 5, 6),
			NewFeatureAttention(r, 6),
			NewDense(r, 6, 2),
		)
	}
	r := tensor.NewRNG(22)
	x := tensor.RandN(r, batch, features, timeSteps)
	xInfer := tensor.RandN(r, 2, features, timeSteps).To32()
	grad := tensor.RandN(r, batch, 2)

	gradsOf := func(interleave bool) []*tensor.Tensor {
		m := build()
		m.Forward(x, true)
		if interleave {
			Quantize32(m)
			Infer32(m, NewInferArena32(), xInfer)
		}
		m.Backward(grad.Clone())
		var gs []*tensor.Tensor
		for _, p := range m.Params() {
			gs = append(gs, p.Grad.Clone())
		}
		return gs
	}
	clean := gradsOf(false)
	mixed := gradsOf(true)
	for i := range clean {
		requireBitwiseTensors(t, mixed[i], clean[i], "param grad")
	}
}

// TestInfer32ArenaZeroAllocSteadyState proves a warmed-up f32 arena
// forward performs no heap allocations across all architecture families.
func TestInfer32ArenaZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation defeats escape analysis; allocation counts are meaningless")
	}
	const features, timeSteps, batch = 8, 32, 32
	for name, model := range inferStacks(features, timeSteps) {
		t.Run(name, func(t *testing.T) {
			Quantize32(model)
			r := tensor.NewRNG(5)
			x := tensor.RandN32(r, batch, features, timeSteps)
			arena := NewInferArena32()
			for i := 0; i < 3; i++ { // warm arena slots and kernel pools
				arena.Reset()
				Infer32(model, arena, x)
			}
			allocs := testing.AllocsPerRun(20, func() {
				arena.Reset()
				Infer32(model, arena, x)
			})
			if allocs != 0 {
				t.Fatalf("steady-state f32 arena inference allocates %.1f times per op, want 0", allocs)
			}
		})
	}
}

// BenchmarkArenaInference32 measures the steady-state f32 arena forward
// of the TCN+attention stack at serving batch size — the f32 counterpart
// of BenchmarkArenaInference.
func BenchmarkArenaInference32(b *testing.B) {
	const features, timeSteps, batch = 8, 32, 32
	model := inferStacks(features, timeSteps)["rptcn-style"]
	Quantize32(model)
	r := tensor.NewRNG(5)
	x := tensor.RandN32(r, batch, features, timeSteps)
	arena := NewInferArena32()
	arena.Reset()
	Infer32(model, arena, x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arena.Reset()
		Infer32(model, arena, x)
	}
}
