package nn

import (
	"testing"

	"repro/internal/tensor"
)

// The conv/LSTM/GRU/attention benchmarks run at batch 32 under their
// original names plus batch 64 and 256 variants, the sizes where the
// parallel kernels engage on multi-core runners.

func benchCausalConv1DForward(b *testing.B, batch int) {
	r := tensor.NewRNG(1)
	c := NewCausalConv1D(r, 12, 16, 3, 2, true)
	x := tensor.RandN(r, batch, 12, 32)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Forward(x, false)
	}
}

func BenchmarkCausalConv1DForward(b *testing.B)         { benchCausalConv1DForward(b, 32) }
func BenchmarkCausalConv1DForwardBatch64(b *testing.B)  { benchCausalConv1DForward(b, 64) }
func BenchmarkCausalConv1DForwardBatch256(b *testing.B) { benchCausalConv1DForward(b, 256) }

func benchCausalConv1DBackward(b *testing.B, batch int) {
	r := tensor.NewRNG(2)
	c := NewCausalConv1D(r, 12, 16, 3, 2, true)
	x := tensor.RandN(r, batch, 12, 32)
	y := c.Forward(x, true)
	g := tensor.RandN(r, y.Shape()...)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ZeroGrad(c)
		c.Backward(g)
	}
}

func BenchmarkCausalConv1DBackward(b *testing.B)         { benchCausalConv1DBackward(b, 32) }
func BenchmarkCausalConv1DBackwardBatch64(b *testing.B)  { benchCausalConv1DBackward(b, 64) }
func BenchmarkCausalConv1DBackwardBatch256(b *testing.B) { benchCausalConv1DBackward(b, 256) }

func BenchmarkTemporalBlockForwardBackward(b *testing.B) {
	r := tensor.NewRNG(3)
	blk := NewTemporalBlock(r, TemporalBlockConfig{
		InChannels: 12, OutChannels: 16, KernelSize: 3, Dilation: 2, Dropout: 0.1, WeightNorm: true,
	})
	x := tensor.RandN(r, 32, 12, 32)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ZeroGrad(blk)
		y := blk.Forward(x, true)
		blk.Backward(y)
	}
}

func benchLSTM(b *testing.B, batch int) {
	r := tensor.NewRNG(4)
	l := NewLSTM(r, 12, 32, false)
	x := tensor.RandN(r, batch, 12, 32)
	g := tensor.RandN(r, batch, 32)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ZeroGrad(l)
		l.Forward(x, true)
		l.Backward(g)
	}
}

func BenchmarkLSTMForwardBackward(b *testing.B)         { benchLSTM(b, 32) }
func BenchmarkLSTMForwardBackwardBatch64(b *testing.B)  { benchLSTM(b, 64) }
func BenchmarkLSTMForwardBackwardBatch256(b *testing.B) { benchLSTM(b, 256) }

func benchGRU(b *testing.B, batch int) {
	r := tensor.NewRNG(5)
	l := NewGRU(r, 12, 32, false)
	x := tensor.RandN(r, batch, 12, 32)
	g := tensor.RandN(r, batch, 32)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ZeroGrad(l)
		l.Forward(x, true)
		l.Backward(g)
	}
}

func BenchmarkGRUForwardBackward(b *testing.B)         { benchGRU(b, 32) }
func BenchmarkGRUForwardBackwardBatch64(b *testing.B)  { benchGRU(b, 64) }
func BenchmarkGRUForwardBackwardBatch256(b *testing.B) { benchGRU(b, 256) }

func BenchmarkDenseForward(b *testing.B) {
	r := tensor.NewRNG(6)
	d := NewDense(r, 64, 64)
	x := tensor.RandN(r, 128, 64)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Forward(x, false)
	}
}

func benchFeatureAttention(b *testing.B, batch int) {
	r := tensor.NewRNG(7)
	a := NewFeatureAttention(r, 64)
	x := tensor.RandN(r, batch, 64)
	g := tensor.RandN(r, batch, 64)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ZeroGrad(a)
		a.Forward(x, true)
		a.Backward(g)
	}
}

func BenchmarkFeatureAttentionForwardBackward(b *testing.B)         { benchFeatureAttention(b, 128) }
func BenchmarkFeatureAttentionForwardBackwardBatch64(b *testing.B)  { benchFeatureAttention(b, 64) }
func BenchmarkFeatureAttentionForwardBackwardBatch256(b *testing.B) { benchFeatureAttention(b, 256) }
