package nn

import (
	"testing"

	"repro/internal/tensor"
)

func BenchmarkCausalConv1DForward(b *testing.B) {
	r := tensor.NewRNG(1)
	c := NewCausalConv1D(r, 12, 16, 3, 2, true)
	x := tensor.RandN(r, 32, 12, 32)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Forward(x, false)
	}
}

func BenchmarkCausalConv1DBackward(b *testing.B) {
	r := tensor.NewRNG(2)
	c := NewCausalConv1D(r, 12, 16, 3, 2, true)
	x := tensor.RandN(r, 32, 12, 32)
	y := c.Forward(x, true)
	g := tensor.RandN(r, y.Shape()...)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ZeroGrad(c)
		c.Backward(g)
	}
}

func BenchmarkTemporalBlockForwardBackward(b *testing.B) {
	r := tensor.NewRNG(3)
	blk := NewTemporalBlock(r, TemporalBlockConfig{
		InChannels: 12, OutChannels: 16, KernelSize: 3, Dilation: 2, Dropout: 0.1, WeightNorm: true,
	})
	x := tensor.RandN(r, 32, 12, 32)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ZeroGrad(blk)
		y := blk.Forward(x, true)
		blk.Backward(y)
	}
}

func BenchmarkLSTMForwardBackward(b *testing.B) {
	r := tensor.NewRNG(4)
	l := NewLSTM(r, 12, 32, false)
	x := tensor.RandN(r, 32, 12, 32)
	g := tensor.RandN(r, 32, 32)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ZeroGrad(l)
		l.Forward(x, true)
		l.Backward(g)
	}
}

func BenchmarkGRUForwardBackward(b *testing.B) {
	r := tensor.NewRNG(5)
	l := NewGRU(r, 12, 32, false)
	x := tensor.RandN(r, 32, 12, 32)
	g := tensor.RandN(r, 32, 32)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ZeroGrad(l)
		l.Forward(x, true)
		l.Backward(g)
	}
}

func BenchmarkDenseForward(b *testing.B) {
	r := tensor.NewRNG(6)
	d := NewDense(r, 64, 64)
	x := tensor.RandN(r, 128, 64)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Forward(x, false)
	}
}

func BenchmarkFeatureAttentionForwardBackward(b *testing.B) {
	r := tensor.NewRNG(7)
	a := NewFeatureAttention(r, 64)
	x := tensor.RandN(r, 128, 64)
	g := tensor.RandN(r, 128, 64)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ZeroGrad(a)
		a.Forward(x, true)
		a.Backward(g)
	}
}
