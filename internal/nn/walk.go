package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// ChildLayers is implemented by composite layers so generic traversals
// (RNG-state checkpointing, structural inspection) can reach every
// nested layer without knowing concrete model types.
type ChildLayers interface {
	Children() []Layer
}

// RandomStream is implemented by layers that hold an internal random
// stream (Dropout, SpatialDropout1D). Checkpoint/resume must capture
// these streams: a resumed run replays the exact dropout masks of the
// uninterrupted one, which is what makes resume bitwise reproducible.
type RandomStream interface {
	RNGState() tensor.RNGState
	SetRNGState(tensor.RNGState)
}

// VisitLayers walks the layer tree rooted at l in deterministic
// pre-order (the order Children() returns), calling fn on every layer
// including the root.
func VisitLayers(l Layer, fn func(Layer)) {
	if l == nil {
		return
	}
	fn(l)
	if c, ok := l.(ChildLayers); ok {
		for _, child := range c.Children() {
			VisitLayers(child, fn)
		}
	}
}

// RNGStates collects the random-stream states of every RandomStream
// layer under m, in deterministic traversal order.
func RNGStates(m Layer) []tensor.RNGState {
	var out []tensor.RNGState
	VisitLayers(m, func(l Layer) {
		if rs, ok := l.(RandomStream); ok {
			out = append(out, rs.RNGState())
		}
	})
	return out
}

// SetRNGStates restores states captured by RNGStates on an identically
// structured model. A count mismatch means the architecture changed
// since the capture and is reported as an error.
func SetRNGStates(m Layer, states []tensor.RNGState) error {
	var streams []RandomStream
	VisitLayers(m, func(l Layer) {
		if rs, ok := l.(RandomStream); ok {
			streams = append(streams, rs)
		}
	})
	if len(streams) != len(states) {
		return fmt.Errorf("nn: model has %d random streams, snapshot has %d", len(streams), len(states))
	}
	for i, rs := range streams {
		rs.SetRNGState(states[i])
	}
	return nil
}

// Children implements ChildLayers.
func (s *Sequential) Children() []Layer { return s.Layers }

// Children implements ChildLayers.
func (t *TCN) Children() []Layer {
	out := make([]Layer, len(t.Blocks))
	for i, b := range t.Blocks {
		out[i] = b
	}
	return out
}

// Children implements ChildLayers.
func (b *TemporalBlock) Children() []Layer {
	out := []Layer{b.conv1, &b.relu1, b.drop1, b.conv2, &b.relu2, b.drop2}
	if b.downsample != nil {
		out = append(out, b.downsample)
	}
	return append(out, &b.finalReLU)
}

// Children implements ChildLayers: traversals see through the profiling
// wrapper to the wrapped layer.
func (w *Profiled) Children() []Layer { return []Layer{w.inner} }

// RNGState implements RandomStream.
func (d *Dropout) RNGState() tensor.RNGState { return d.rng.State() }

// SetRNGState implements RandomStream.
func (d *Dropout) SetRNGState(s tensor.RNGState) { d.rng.SetState(s) }

// RNGState implements RandomStream.
func (d *SpatialDropout1D) RNGState() tensor.RNGState { return d.rng.State() }

// SetRNGState implements RandomStream.
func (d *SpatialDropout1D) SetRNGState(s tensor.RNGState) { d.rng.SetState(s) }
