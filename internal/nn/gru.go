package nn

import (
	"fmt"
	"math"

	"repro/internal/par"
	"repro/internal/tensor"
)

// GRU is a gated recurrent unit layer (Cho et al. 2014) with full
// backpropagation through time — a lighter recurrent alternative to LSTM
// offered for architecture exploration beyond the paper's baselines.
//
// Update equations (gate order in the stacked matrices: reset, update,
// candidate):
//
//	r_t = σ(W_r x_t + U_r h_{t−1} + b_r)
//	z_t = σ(W_z x_t + U_z h_{t−1} + b_z)
//	ĥ_t = tanh(W_h x_t + U_h (r_t ⊙ h_{t−1}) + b_h)
//	h_t = (1 − z_t) ⊙ h_{t−1} + z_t ⊙ ĥ_t
//
// Input is [batch, features, time]; output is [batch, hidden, time] when
// ReturnSequences, else the final hidden state [batch, hidden].
//
// Like LSTM, the input projection X·Wxᵀ for every timestep is one large
// parallel matmul, per-step state lives in contiguous reused scratch, and
// the stacked parameter gradients reduce through single large matmuls, so
// results are bitwise deterministic for any worker count.
type GRU struct {
	InFeatures      int
	Hidden          int
	ReturnSequences bool

	Wx *Param // [3H, F]
	Wh *Param // [3H, H]
	B  *Param // [3H]

	s gruScratch

	// Cached (r,z)/candidate views of Wh.Value for the arena-inference
	// path, so InferForward allocates no tensor headers (see infer.go).
	inferWRZ, inferWC *tensor.Tensor

	// Float32 weight mirrors for the f32 serving tier (see infer32.go);
	// the stacked Wh is pre-split into its (r,z) and candidate halves.
	wx32, whRZ32, whC32, b32 *tensor.Tensor32
}

// gruScratch holds forward caches and backward workspaces, t-major like
// lstmScratch.
type gruScratch struct {
	b, t int

	xAll    *tensor.Tensor // [T*B, F]
	zxAll   *tensor.Tensor // [T*B, 3H] input-side pre-activations
	hAll    *tensor.Tensor // [(T+1)*B, H]; block 0 is h_{-1}=0
	rAll    *tensor.Tensor // [T*B, H] reset gate
	zgAll   *tensor.Tensor // [T*B, H] update gate
	hCanAll *tensor.Tensor // [T*B, H] candidate
	rhAll   *tensor.Tensor // [T*B, H] r ⊙ h_{t−1}
	zhRZ    *tensor.Tensor // [B, 2H] per-step recurrent projection (r,z)
	zhC     *tensor.Tensor // [B, H] per-step candidate projection

	hPrevView []*tensor.Tensor // [B,H] views of hAll blocks 0..T-1

	// Backward workspaces.
	drzAll   *tensor.Tensor   // [T*B, 2H] pre-activation grads (r,z)
	dcanAll  *tensor.Tensor   // [T*B, H] candidate pre-activation grads
	dzxAll   *tensor.Tensor   // [T*B, 3H] stacked for the x-side matmuls
	dh       *tensor.Tensor   // [B, H]
	dRH      *tensor.Tensor   // [B, H]
	dhp2     *tensor.Tensor   // [B, H] recurrent contribution scratch
	dxAll    *tensor.Tensor   // [T*B, F]
	drzView  []*tensor.Tensor // [B,2H] views of drzAll blocks
	dcanView []*tensor.Tensor // [B,H] views of dcanAll blocks
}

func (s *gruScratch) ensure(b, t, f, h int) {
	if s.b == b && s.t == t && s.xAll != nil {
		return
	}
	s.b, s.t = b, t
	s.xAll = tensor.New(t*b, f)
	s.zxAll = tensor.New(t*b, 3*h)
	s.hAll = tensor.New((t+1)*b, h)
	s.rAll = tensor.New(t*b, h)
	s.zgAll = tensor.New(t*b, h)
	s.hCanAll = tensor.New(t*b, h)
	s.rhAll = tensor.New(t*b, h)
	s.zhRZ = tensor.New(b, 2*h)
	s.zhC = tensor.New(b, h)
	s.drzAll = tensor.New(t*b, 2*h)
	s.dcanAll = tensor.New(t*b, h)
	s.dzxAll = tensor.New(t*b, 3*h)
	s.dh = tensor.New(b, h)
	s.dRH = tensor.New(b, h)
	s.dhp2 = tensor.New(b, h)
	s.dxAll = tensor.New(t*b, f)
	s.hPrevView = make([]*tensor.Tensor, t)
	s.drzView = make([]*tensor.Tensor, t)
	s.dcanView = make([]*tensor.Tensor, t)
	for step := 0; step < t; step++ {
		s.hPrevView[step] = tensor.FromSlice(s.hAll.Data[step*b*h:(step+1)*b*h], b, h)
		s.drzView[step] = tensor.FromSlice(s.drzAll.Data[step*b*2*h:(step+1)*b*2*h], b, 2*h)
		s.dcanView[step] = tensor.FromSlice(s.dcanAll.Data[step*b*h:(step+1)*b*h], b, h)
	}
}

// NewGRU builds the layer with Xavier-uniform weights.
func NewGRU(r *tensor.RNG, inFeatures, hidden int, returnSequences bool) *GRU {
	return &GRU{
		InFeatures:      inFeatures,
		Hidden:          hidden,
		ReturnSequences: returnSequences,
		Wx:              NewParam("gru.Wx", XavierUniform(r, inFeatures, hidden, 3*hidden, inFeatures)),
		Wh:              NewParam("gru.Wh", XavierUniform(r, hidden, hidden, 3*hidden, hidden)),
		B:               NewParam("gru.B", tensor.New(3*hidden)),
	}
}

// whRZ and whC return views of the (r,z) rows [0,2H) and candidate rows
// [2H,3H) of a stacked [3H, H] matrix.
func whRZ(w *tensor.Tensor, h int) *tensor.Tensor {
	return tensor.FromSlice(w.Data[:2*h*h], 2*h, h)
}

func whC(w *tensor.Tensor, h int) *tensor.Tensor {
	return tensor.FromSlice(w.Data[2*h*h:3*h*h], h, h)
}

// Forward implements Layer.
func (l *GRU) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Dims() != 3 {
		panic(fmt.Sprintf("nn: GRU requires [batch, features, time], got %v", x.Shape()))
	}
	if x.Dim(1) != l.InFeatures {
		panic(fmt.Sprintf("nn: GRU feature mismatch: input %d, layer %d", x.Dim(1), l.InFeatures))
	}
	b, T := x.Dim(0), x.Dim(2)
	H, F := l.Hidden, l.InFeatures
	s := &l.s
	s.ensure(b, T, F, H)

	gatherTimeMajor(s.xAll, x, b, F, T)
	s.xAll.MatMulTInto(l.Wx.Value, s.zxAll)

	for i := 0; i < b*H; i++ {
		s.hAll.Data[i] = 0
	}

	wRZ := whRZ(l.Wh.Value, H)
	wC := whC(l.Wh.Value, H)
	bias := l.B.Value.Data
	for t := 0; t < T; t++ {
		hPrev := s.hPrevView[t]
		hPrev.MatMulTInto(wRZ, s.zhRZ)
		base := t * b
		gates := func(lo, hi int) {
			for bi := lo; bi < hi; bi++ {
				off := (base + bi) * H
				zxrow := s.zxAll.Data[(base+bi)*3*H : (base+bi+1)*3*H]
				zhrow := s.zhRZ.Data[bi*2*H : (bi+1)*2*H]
				hPrevRow := s.hAll.Data[t*b*H+bi*H : t*b*H+(bi+1)*H]
				for j := 0; j < H; j++ {
					rv := sigmoid(zxrow[j] + zhrow[j] + bias[j])
					zv := sigmoid(zxrow[H+j] + zhrow[H+j] + bias[H+j])
					s.rAll.Data[off+j] = rv
					s.zgAll.Data[off+j] = zv
					s.rhAll.Data[off+j] = rv * hPrevRow[j]
				}
			}
		}
		if b*H < parFlops/8 {
			gates(0, b)
		} else {
			par.Run(b, gates)
		}
		// Candidate recurrent projection uses U_h (r ⊙ h_{t−1}).
		rh := tensor.FromSlice(s.rhAll.Data[base*H:(base+b)*H], b, H)
		rh.MatMulTInto(wC, s.zhC)
		state := func(lo, hi int) {
			for bi := lo; bi < hi; bi++ {
				off := (base + bi) * H
				zxrow := s.zxAll.Data[(base+bi)*3*H : (base+bi+1)*3*H]
				hPrevRow := s.hAll.Data[t*b*H+bi*H : t*b*H+(bi+1)*H]
				hNewRow := s.hAll.Data[(t+1)*b*H+bi*H : (t+1)*b*H+(bi+1)*H]
				for j := 0; j < H; j++ {
					hc := math.Tanh(zxrow[2*H+j] + s.zhC.Data[bi*H+j] + bias[2*H+j])
					s.hCanAll.Data[off+j] = hc
					zv := s.zgAll.Data[off+j]
					hNewRow[j] = (1-zv)*hPrevRow[j] + zv*hc
				}
			}
		}
		if b*H < parFlops/8 {
			state(0, b)
		} else {
			par.Run(b, state)
		}
	}

	if l.ReturnSequences {
		seq := tensor.New(b, H, T)
		scatter := func(lo, hi int) {
			for r := lo; r < hi; r++ {
				bi, j := r/H, r%H
				for t := 0; t < T; t++ {
					seq.Data[r*T+t] = s.hAll.Data[(t+1)*b*H+bi*H+j]
				}
			}
		}
		if b*H*T < parFlops {
			scatter(0, b*H)
		} else {
			par.Run(b*H, scatter)
		}
		return seq
	}
	out := tensor.New(b, H)
	copy(out.Data, s.hAll.Data[T*b*H:(T+1)*b*H])
	return out
}

// Backward implements Layer.
func (l *GRU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	s := &l.s
	b, T := s.b, s.t
	H, F := l.Hidden, l.InFeatures
	dx := tensor.New(b, F, T)
	s.dh.Zero()

	wRZ := whRZ(l.Wh.Value, H)
	wC := whC(l.Wh.Value, H)

	for t := T - 1; t >= 0; t-- {
		if l.ReturnSequences {
			for bi := 0; bi < b; bi++ {
				for j := 0; j < H; j++ {
					s.dh.Data[bi*H+j] += grad.Data[(bi*H+j)*T+t]
				}
			}
		} else if t == T-1 {
			s.dh.AddInPlace(grad)
		}

		base := t * b
		// Candidate pre-activation gradient for the whole step.
		canBack := func(lo, hi int) {
			for bi := lo; bi < hi; bi++ {
				off := (base + bi) * H
				for j := 0; j < H; j++ {
					dhv := s.dh.Data[bi*H+j]
					zv := s.zgAll.Data[off+j]
					hc := s.hCanAll.Data[off+j]
					s.dcanAll.Data[off+j] = dhv * zv * (1 - hc*hc)
				}
			}
		}
		if b*H < parFlops/8 {
			canBack(0, b)
		} else {
			par.Run(b, canBack)
		}
		// d(r⊙hPrev) via the candidate recurrence.
		s.dcanView[t].MatMulInto(wC, s.dRH)
		// Remaining elementwise gate gradients; dh is rewritten to the
		// direct hPrev path and the reset-gate routing, the r/z recurrent
		// contribution is added after its matmul below.
		gateBack := func(lo, hi int) {
			for bi := lo; bi < hi; bi++ {
				off := (base + bi) * H
				hPrevRow := s.hAll.Data[t*b*H+bi*H : t*b*H+(bi+1)*H]
				drzrow := s.drzAll.Data[(base+bi)*2*H : (base+bi+1)*2*H]
				for j := 0; j < H; j++ {
					dhv := s.dh.Data[bi*H+j]
					zv := s.zgAll.Data[off+j]
					rv := s.rAll.Data[off+j]
					hc := s.hCanAll.Data[off+j]
					dzv := dhv * (hc - hPrevRow[j])
					drv := s.dRH.Data[bi*H+j] * hPrevRow[j]
					drzrow[j] = drv * rv * (1 - rv)
					drzrow[H+j] = dzv * zv * (1 - zv)
					// Direct paths into h_{t−1}.
					s.dh.Data[bi*H+j] = dhv*(1-zv) + s.dRH.Data[bi*H+j]*rv
				}
			}
		}
		if b*H < parFlops/8 {
			gateBack(0, b)
		} else {
			par.Run(b, gateBack)
		}
		// Recurrent contribution of the r/z gates to h_{t−1}.
		s.drzView[t].MatMulInto(wRZ, s.dhp2)
		s.dh.AddInPlace(s.dhp2)
	}

	// Assemble dzxAll = [drz | dcan] for the single x-side matmuls.
	assemble := func(lo, hi int) {
		for r := lo; r < hi; r++ {
			dst := s.dzxAll.Data[r*3*H : (r+1)*3*H]
			copy(dst[:2*H], s.drzAll.Data[r*2*H:(r+1)*2*H])
			copy(dst[2*H:], s.dcanAll.Data[r*H:(r+1)*H])
		}
	}
	if T*b*H < parFlops {
		assemble(0, T*b)
	} else {
		par.Run(T*b, assemble)
	}

	hPrevAll := tensor.FromSlice(s.hAll.Data[:T*b*H], T*b, H)
	// Wh gradients: (r,z) rows against h_{t−1}, candidate rows against r⊙h.
	s.drzAll.TMatMulAcc(hPrevAll, whRZ(l.Wh.Grad, H))
	s.dcanAll.TMatMulAcc(s.rhAll, whC(l.Wh.Grad, H))
	s.dzxAll.TMatMulAcc(s.xAll, l.Wx.Grad)
	s.dzxAll.SumRowsAcc(l.B.Grad)
	s.dzxAll.MatMulInto(l.Wx.Value, s.dxAll)
	scatter := func(lo, hi int) {
		for r := lo; r < hi; r++ {
			tt, bi := r/b, r%b
			row := s.dxAll.Data[r*F : (r+1)*F]
			for fi := 0; fi < F; fi++ {
				dx.Data[(bi*F+fi)*T+tt] = row[fi]
			}
		}
	}
	if T*b*F < parFlops {
		scatter(0, T*b)
	} else {
		par.Run(T*b, scatter)
	}
	return dx
}

// Params implements Layer.
func (l *GRU) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }
