package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// GRU is a gated recurrent unit layer (Cho et al. 2014) with full
// backpropagation through time — a lighter recurrent alternative to LSTM
// offered for architecture exploration beyond the paper's baselines.
//
// Update equations (gate order in the stacked matrices: reset, update,
// candidate):
//
//	r_t = σ(W_r x_t + U_r h_{t−1} + b_r)
//	z_t = σ(W_z x_t + U_z h_{t−1} + b_z)
//	ĥ_t = tanh(W_h x_t + U_h (r_t ⊙ h_{t−1}) + b_h)
//	h_t = (1 − z_t) ⊙ h_{t−1} + z_t ⊙ ĥ_t
//
// Input is [batch, features, time]; output is [batch, hidden, time] when
// ReturnSequences, else the final hidden state [batch, hidden].
type GRU struct {
	InFeatures      int
	Hidden          int
	ReturnSequences bool

	Wx *Param // [3H, F]
	Wh *Param // [3H, H]
	B  *Param // [3H]

	xs    *tensor.Tensor
	steps []gruStepCache
}

type gruStepCache struct {
	x, hPrev   *tensor.Tensor
	r, z, hCan *tensor.Tensor // reset gate, update gate, candidate
	rh         *tensor.Tensor // r ⊙ h_{t−1}
}

// NewGRU builds the layer with Xavier-uniform weights.
func NewGRU(r *tensor.RNG, inFeatures, hidden int, returnSequences bool) *GRU {
	return &GRU{
		InFeatures:      inFeatures,
		Hidden:          hidden,
		ReturnSequences: returnSequences,
		Wx:              NewParam("gru.Wx", XavierUniform(r, inFeatures, hidden, 3*hidden, inFeatures)),
		Wh:              NewParam("gru.Wh", XavierUniform(r, hidden, hidden, 3*hidden, hidden)),
		B:               NewParam("gru.B", tensor.New(3*hidden)),
	}
}

// Forward implements Layer.
func (l *GRU) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Dims() != 3 {
		panic(fmt.Sprintf("nn: GRU requires [batch, features, time], got %v", x.Shape()))
	}
	if x.Dim(1) != l.InFeatures {
		panic(fmt.Sprintf("nn: GRU feature mismatch: input %d, layer %d", x.Dim(1), l.InFeatures))
	}
	l.xs = x
	b, T := x.Dim(0), x.Dim(2)
	H := l.Hidden
	h := tensor.New(b, H)
	l.steps = l.steps[:0]
	var seq *tensor.Tensor
	if l.ReturnSequences {
		seq = tensor.New(b, H, T)
	}
	for t := 0; t < T; t++ {
		xt := stepInput(x, t)
		// Pre-activations for r and z come from x and h directly.
		zx := xt.MatMulT(l.Wx.Value) // [B, 3H]
		zh := h.MatMulT(l.Wh.Value)  // [B, 3H]
		r := tensor.New(b, H)
		z := tensor.New(b, H)
		for bi := 0; bi < b; bi++ {
			for j := 0; j < H; j++ {
				pr := zx.Data[bi*3*H+j] + zh.Data[bi*3*H+j] + l.B.Value.Data[j]
				pz := zx.Data[bi*3*H+H+j] + zh.Data[bi*3*H+H+j] + l.B.Value.Data[H+j]
				r.Data[bi*H+j] = sigmoid(pr)
				z.Data[bi*H+j] = sigmoid(pz)
			}
		}
		rh := r.Mul(h)
		// Candidate uses U_h (r ⊙ h), which requires a separate matmul with
		// the candidate block of Wh.
		hCanPre := tensor.New(b, H)
		for bi := 0; bi < b; bi++ {
			for j := 0; j < H; j++ {
				s := zx.Data[bi*3*H+2*H+j] + l.B.Value.Data[2*H+j]
				base := (2*H + j) * H
				for k := 0; k < H; k++ {
					s += l.Wh.Value.Data[base+k] * rh.Data[bi*H+k]
				}
				hCanPre.Data[bi*H+j] = s
			}
		}
		hCan := hCanPre.Apply(math.Tanh)
		hNew := tensor.New(b, H)
		for i := range hNew.Data {
			hNew.Data[i] = (1-z.Data[i])*h.Data[i] + z.Data[i]*hCan.Data[i]
		}
		l.steps = append(l.steps, gruStepCache{x: xt, hPrev: h, r: r, z: z, hCan: hCan, rh: rh})
		h = hNew
		if l.ReturnSequences {
			for bi := 0; bi < b; bi++ {
				for j := 0; j < H; j++ {
					seq.Data[(bi*H+j)*T+t] = h.Data[bi*H+j]
				}
			}
		}
	}
	if l.ReturnSequences {
		return seq
	}
	return h
}

// Backward implements Layer.
func (l *GRU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := l.xs
	b, T := x.Dim(0), x.Dim(2)
	H, F := l.Hidden, l.InFeatures
	dx := tensor.New(b, F, T)
	dh := tensor.New(b, H)

	stepGrad := func(t int) *tensor.Tensor {
		if !l.ReturnSequences {
			if t == T-1 {
				return grad
			}
			return nil
		}
		g := tensor.New(b, H)
		for bi := 0; bi < b; bi++ {
			for j := 0; j < H; j++ {
				g.Data[bi*H+j] = grad.Data[(bi*H+j)*T+t]
			}
		}
		return g
	}

	for t := T - 1; t >= 0; t-- {
		if sg := stepGrad(t); sg != nil {
			dh.AddInPlace(sg)
		}
		st := l.steps[t]
		// h = (1−z)·hPrev + z·hCan
		dz := tensor.New(b, H)
		dhCan := tensor.New(b, H)
		dhPrev := tensor.New(b, H)
		for i := range dh.Data {
			dz.Data[i] = dh.Data[i] * (st.hCan.Data[i] - st.hPrev.Data[i])
			dhCan.Data[i] = dh.Data[i] * st.z.Data[i]
			dhPrev.Data[i] = dh.Data[i] * (1 - st.z.Data[i])
		}
		// Through candidate tanh: pre-activation gradient.
		dhCanPre := tensor.New(b, H)
		for i := range dhCan.Data {
			hc := st.hCan.Data[i]
			dhCanPre.Data[i] = dhCan.Data[i] * (1 - hc*hc)
		}
		// Candidate path: pre = Wx_h x + U_h (r⊙hPrev) + b_h.
		// d(rh) = U_hᵀ dhCanPre ; dWh (candidate rows) += dhCanPreᵀ rh.
		dRH := tensor.New(b, H)
		for bi := 0; bi < b; bi++ {
			for j := 0; j < H; j++ {
				g := dhCanPre.Data[bi*H+j]
				if g == 0 {
					continue
				}
				base := (2*H + j) * H
				for k := 0; k < H; k++ {
					dRH.Data[bi*H+k] += l.Wh.Value.Data[base+k] * g
					l.Wh.Grad.Data[base+k] += g * st.rh.Data[bi*H+k]
				}
			}
		}
		dr := dRH.Mul(st.hPrev)
		dhPrev.AddInPlace(dRH.Mul(st.r))
		// Gate pre-activations.
		drPre := tensor.New(b, H)
		dzPre := tensor.New(b, H)
		for i := range dr.Data {
			rv := st.r.Data[i]
			zv := st.z.Data[i]
			drPre.Data[i] = dr.Data[i] * rv * (1 - rv)
			dzPre.Data[i] = dz.Data[i] * zv * (1 - zv)
		}
		// Stack [drPre, dzPre, dhCanPre] as [B, 3H] for the x-side matmuls.
		dzx := tensor.New(b, 3*H)
		for bi := 0; bi < b; bi++ {
			copy(dzx.Data[bi*3*H:bi*3*H+H], drPre.Data[bi*H:(bi+1)*H])
			copy(dzx.Data[bi*3*H+H:bi*3*H+2*H], dzPre.Data[bi*H:(bi+1)*H])
			copy(dzx.Data[bi*3*H+2*H:bi*3*H+3*H], dhCanPre.Data[bi*H:(bi+1)*H])
		}
		l.Wx.Grad.AddInPlace(dzx.TMatMul(st.x))
		l.B.Grad.AddInPlace(dzx.SumRows())
		dxT := dzx.MatMul(l.Wx.Value)
		for bi := 0; bi < b; bi++ {
			for fi := 0; fi < F; fi++ {
				dx.Data[(bi*F+fi)*T+t] = dxT.Data[bi*F+fi]
			}
		}
		// h-side contributions of r and z gates (candidate already handled).
		dzh := tensor.New(b, 2*H)
		for bi := 0; bi < b; bi++ {
			copy(dzh.Data[bi*2*H:bi*2*H+H], drPre.Data[bi*H:(bi+1)*H])
			copy(dzh.Data[bi*2*H+H:bi*2*H+2*H], dzPre.Data[bi*H:(bi+1)*H])
		}
		// Wh gradient for the r/z blocks and the hPrev path.
		for bi := 0; bi < b; bi++ {
			for j := 0; j < 2*H; j++ {
				g := dzh.Data[bi*2*H+j]
				if g == 0 {
					continue
				}
				base := j * H
				for k := 0; k < H; k++ {
					l.Wh.Grad.Data[base+k] += g * st.hPrev.Data[bi*H+k]
					dhPrev.Data[bi*H+k] += g * l.Wh.Value.Data[base+k]
				}
			}
		}
		dh = dhPrev
	}
	return dx
}

// Params implements Layer.
func (l *GRU) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }
