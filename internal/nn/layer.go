// Package nn is a from-scratch neural-network library with analytic
// per-layer backpropagation. It provides every building block the RPTCN
// paper's models need: fully connected layers, causal dilated 1-D
// convolutions with weight normalization, residual temporal blocks,
// dropout, a feature attention head, and LSTM — all verified against
// numerical gradients in the test suite.
//
// Data layout conventions:
//   - Feed-forward layers take [batch, features].
//   - Sequence layers take [batch, channels, time].
package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Param is a trainable parameter with its accumulated gradient.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam allocates a parameter with a zero gradient of matching shape.
func NewParam(name string, value *tensor.Tensor) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Shape()...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is a differentiable module. Forward must cache whatever Backward
// needs; Backward consumes the gradient w.r.t. the layer's output and
// returns the gradient w.r.t. its input, accumulating parameter gradients
// along the way.
type Layer interface {
	// Forward computes the layer output. train toggles training-only
	// behaviour such as dropout.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward propagates grad (dL/dOutput) and returns dL/dInput.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
}

// Sequential chains layers, feeding each output into the next layer.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a Sequential from the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Add appends a layer.
func (s *Sequential) Add(l Layer) { s.Layers = append(s.Layers, l) }

// Forward runs all layers in order.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs all layers in reverse order.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns the concatenated parameters of all layers.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears gradients on every parameter of the model.
func ZeroGrad(m Layer) {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// ParamCount returns the total number of scalar parameters in the model.
func ParamCount(m Layer) int {
	n := 0
	for _, p := range m.Params() {
		n += p.Value.Size()
	}
	return n
}

// Flatten reshapes [batch, d1, d2, ...] into [batch, d1*d2*...].
type Flatten struct {
	inShape []int
}

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	f.inShape = x.Shape()
	batch := f.inShape[0]
	rest := 1
	for _, d := range f.inShape[1:] {
		rest *= d
	}
	return x.Reshape(batch, rest)
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.inShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// LastStep selects the final time step of a [batch, channels, time] tensor,
// producing [batch, channels]. It is the usual head for sequence-to-one
// forecasting.
type LastStep struct {
	inShape []int
}

// Forward implements Layer.
func (l *LastStep) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Dims() != 3 {
		panic(fmt.Sprintf("nn: LastStep requires [batch, channels, time], got %v", x.Shape()))
	}
	l.inShape = x.Shape()
	b, c, t := l.inShape[0], l.inShape[1], l.inShape[2]
	out := tensor.New(b, c)
	for i := 0; i < b; i++ {
		for j := 0; j < c; j++ {
			out.Data[i*c+j] = x.Data[(i*c+j)*t+t-1]
		}
	}
	return out
}

// Backward implements Layer.
func (l *LastStep) Backward(grad *tensor.Tensor) *tensor.Tensor {
	b, c, t := l.inShape[0], l.inShape[1], l.inShape[2]
	out := tensor.New(b, c, t)
	for i := 0; i < b; i++ {
		for j := 0; j < c; j++ {
			out.Data[(i*c+j)*t+t-1] = grad.Data[i*c+j]
		}
	}
	return out
}

// Params implements Layer.
func (l *LastStep) Params() []*Param { return nil }
