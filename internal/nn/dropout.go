package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Dropout zeroes each element independently with probability P during
// training and rescales survivors by 1/(1−P) (inverted dropout), so
// inference needs no correction.
type Dropout struct {
	P   float64
	rng *tensor.RNG

	mask []float64
}

// NewDropout builds a Dropout layer with its own random stream.
func NewDropout(r *tensor.RNG, p float64) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %g out of [0,1)", p))
	}
	return &Dropout{P: p, rng: r.Split()}
}

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P == 0 {
		d.mask = nil
		return x
	}
	if cap(d.mask) < x.Size() {
		d.mask = make([]float64, x.Size())
	}
	d.mask = d.mask[:x.Size()]
	keep := 1 / (1 - d.P)
	out := tensor.New(x.Shape()...)
	for i, v := range x.Data {
		if d.rng.Float64() < d.P {
			d.mask[i] = 0
		} else {
			d.mask[i] = keep
			out.Data[i] = v * keep
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return grad
	}
	out := tensor.New(grad.Shape()...)
	for i, g := range grad.Data {
		out.Data[i] = g * d.mask[i]
	}
	return out
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// SpatialDropout1D zeroes entire channels of a [batch, channels, time]
// tensor with probability P — the regularizer the TCN paper (and Fig. 6 of
// RPTCN) uses inside residual blocks, where adjacent time steps are highly
// correlated and elementwise dropout would be ineffective.
type SpatialDropout1D struct {
	P   float64
	rng *tensor.RNG

	mask []float64 // per (batch, channel) keep-scale
	dims [3]int
}

// NewSpatialDropout1D builds the layer with its own random stream.
func NewSpatialDropout1D(r *tensor.RNG, p float64) *SpatialDropout1D {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %g out of [0,1)", p))
	}
	return &SpatialDropout1D{P: p, rng: r.Split()}
}

// Forward implements Layer.
func (d *SpatialDropout1D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 3 {
		panic(fmt.Sprintf("nn: SpatialDropout1D requires [batch, channels, time], got %v", x.Shape()))
	}
	if !train || d.P == 0 {
		d.mask = nil
		return x
	}
	b, c, t := x.Dim(0), x.Dim(1), x.Dim(2)
	d.dims = [3]int{b, c, t}
	if cap(d.mask) < b*c {
		d.mask = make([]float64, b*c)
	}
	d.mask = d.mask[:b*c]
	keep := 1 / (1 - d.P)
	out := tensor.New(b, c, t)
	for bc := 0; bc < b*c; bc++ {
		if d.rng.Float64() < d.P {
			d.mask[bc] = 0
			continue
		}
		d.mask[bc] = keep
		for tt := 0; tt < t; tt++ {
			out.Data[bc*t+tt] = x.Data[bc*t+tt] * keep
		}
	}
	return out
}

// Backward implements Layer.
func (d *SpatialDropout1D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return grad
	}
	b, c, t := d.dims[0], d.dims[1], d.dims[2]
	out := tensor.New(b, c, t)
	for bc := 0; bc < b*c; bc++ {
		m := d.mask[bc]
		if m == 0 {
			continue
		}
		for tt := 0; tt < t; tt++ {
			out.Data[bc*t+tt] = grad.Data[bc*t+tt] * m
		}
	}
	return out
}

// Params implements Layer.
func (d *SpatialDropout1D) Params() []*Param { return nil }
