package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Dense is a fully connected layer: y = x·Wᵀ + b (the paper's eq. 6).
// Input is [batch, in]; output is [batch, out].
type Dense struct {
	W *Param // [out, in]
	B *Param // [out]

	x *tensor.Tensor // cached input for the backward pass

	// Float32 weight mirrors for the f32 serving tier, refreshed by
	// Quantize32 (see infer32.go).
	w32, b32 *tensor.Tensor32
}

// NewDense creates a Dense layer with Xavier-uniform weights.
func NewDense(r *tensor.RNG, in, out int) *Dense {
	return &Dense{
		W: NewParam("dense.W", XavierUniform(r, in, out, out, in)),
		B: NewParam("dense.B", tensor.New(out)),
	}
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Dims() != 2 {
		panic(fmt.Sprintf("nn: Dense requires [batch, features], got %v", x.Shape()))
	}
	d.x = x
	return x.MatMulT(d.W.Value).AddRowVectorInPlace(d.B.Value)
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	// dW = gradᵀ · x ;  db = column sums of grad ;  dx = grad · W.
	grad.TMatMulAcc(d.x, d.W.Grad)
	grad.SumRowsAcc(d.B.Grad)
	return grad.MatMul(d.W.Value)
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }
