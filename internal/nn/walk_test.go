package nn

import (
	"testing"

	"repro/internal/tensor"
)

func buildDropoutModel(seed uint64) (Layer, *tensor.RNG) {
	r := tensor.NewRNG(seed)
	model := NewSequential(
		NewTCN(r, TCNConfig{InChannels: 2, Channels: []int{4, 4}, KernelSize: 3, Dropout: 0.2}),
		&LastStep{},
		NewDropout(r, 0.3),
		NewDense(r, 4, 1),
	)
	return model, r
}

func TestVisitLayersReachesNestedDropouts(t *testing.T) {
	model, _ := buildDropoutModel(1)
	var streams int
	VisitLayers(model, func(l Layer) {
		if _, ok := l.(RandomStream); ok {
			streams++
		}
	})
	// Two TCN blocks with two spatial dropouts each, plus the top Dropout.
	if streams != 5 {
		t.Fatalf("found %d random streams, want 5", streams)
	}
}

func TestRNGStatesRoundTrip(t *testing.T) {
	model, _ := buildDropoutModel(2)
	x := tensor.RandN(tensor.NewRNG(3), 4, 2, 8)

	before := RNGStates(model)
	first := model.Forward(x, true).Clone()

	// Rewind the streams and replay: dropout masks must be identical.
	if err := SetRNGStates(model, before); err != nil {
		t.Fatal(err)
	}
	second := model.Forward(x, true)
	for i := range first.Data {
		if first.Data[i] != second.Data[i] {
			t.Fatalf("replayed forward diverged at %d: %g vs %g", i, first.Data[i], second.Data[i])
		}
	}
}

func TestRNGStatesAdvance(t *testing.T) {
	model, _ := buildDropoutModel(4)
	x := tensor.RandN(tensor.NewRNG(5), 2, 2, 8)
	before := RNGStates(model)
	model.Forward(x, true)
	after := RNGStates(model)
	same := true
	for i := range before {
		if before[i] != after[i] {
			same = false
		}
	}
	if same {
		t.Fatal("training forward did not advance any dropout stream")
	}
}

func TestSetRNGStatesCountMismatch(t *testing.T) {
	model, _ := buildDropoutModel(6)
	if err := SetRNGStates(model, RNGStates(model)[:2]); err == nil {
		t.Fatal("expected error for state-count mismatch")
	}
}

func TestProfiledIsTransparentToWalk(t *testing.T) {
	model, _ := buildDropoutModel(7)
	p := NewProfiler()
	wrapped := p.Wrap("model", model)
	if got := len(RNGStates(wrapped)); got != 5 {
		t.Fatalf("profiled walk found %d streams, want 5", got)
	}
}
