package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// LayerNorm normalizes each sample's feature vector to zero mean and unit
// variance, then applies a learned affine transform (Ba et al. 2016). It
// operates on [batch, features] inputs and is offered as an alternative
// stabilizer to the temporal blocks' weight normalization (ablatable).
type LayerNorm struct {
	Gamma *Param // [features] scale
	Beta  *Param // [features] shift
	Eps   float64

	x      *tensor.Tensor
	xhat   *tensor.Tensor
	invStd []float64
}

// NewLayerNorm creates the layer with γ=1, β=0 and ε=1e-5.
func NewLayerNorm(features int) *LayerNorm {
	g := tensor.Full(1, features)
	return &LayerNorm{
		Gamma: NewParam("ln.Gamma", g),
		Beta:  NewParam("ln.Beta", tensor.New(features)),
		Eps:   1e-5,
	}
}

// Forward implements Layer.
func (l *LayerNorm) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Dims() != 2 {
		panic(fmt.Sprintf("nn: LayerNorm requires [batch, features], got %v", x.Shape()))
	}
	b, f := x.Dim(0), x.Dim(1)
	if f != l.Gamma.Value.Size() {
		panic(fmt.Sprintf("nn: LayerNorm feature mismatch: input %d, layer %d", f, l.Gamma.Value.Size()))
	}
	l.x = x
	l.xhat = tensor.New(b, f)
	if cap(l.invStd) < b {
		l.invStd = make([]float64, b)
	}
	l.invStd = l.invStd[:b]
	out := tensor.New(b, f)
	for bi := 0; bi < b; bi++ {
		row := x.Data[bi*f : (bi+1)*f]
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= float64(f)
		variance := 0.0
		for _, v := range row {
			d := v - mean
			variance += d * d
		}
		variance /= float64(f)
		inv := 1 / math.Sqrt(variance+l.Eps)
		l.invStd[bi] = inv
		for j, v := range row {
			xh := (v - mean) * inv
			l.xhat.Data[bi*f+j] = xh
			out.Data[bi*f+j] = xh*l.Gamma.Value.Data[j] + l.Beta.Value.Data[j]
		}
	}
	return out
}

// Backward implements Layer.
func (l *LayerNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	b, f := grad.Dim(0), grad.Dim(1)
	dx := tensor.New(b, f)
	nf := float64(f)
	for bi := 0; bi < b; bi++ {
		// dβ += g ; dγ += g·x̂ ; dxhat = g·γ.
		var sumDxhat, sumDxhatXhat float64
		dxhat := make([]float64, f)
		for j := 0; j < f; j++ {
			g := grad.Data[bi*f+j]
			xh := l.xhat.Data[bi*f+j]
			l.Beta.Grad.Data[j] += g
			l.Gamma.Grad.Data[j] += g * xh
			d := g * l.Gamma.Value.Data[j]
			dxhat[j] = d
			sumDxhat += d
			sumDxhatXhat += d * xh
		}
		inv := l.invStd[bi]
		for j := 0; j < f; j++ {
			xh := l.xhat.Data[bi*f+j]
			dx.Data[bi*f+j] = (inv / nf) * (nf*dxhat[j] - sumDxhat - xh*sumDxhatXhat)
		}
	}
	return dx
}

// Params implements Layer.
func (l *LayerNorm) Params() []*Param { return []*Param{l.Gamma, l.Beta} }
