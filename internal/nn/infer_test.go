package nn

import (
	"math"
	"testing"

	"repro/internal/par"
	"repro/internal/tensor"
)

// inferStacks builds one representative model per architecture family,
// exercising every layer with an arena path: the TCN residual pipeline
// with attention head, plain LSTM/GRU (both output modes), and a
// CNN-LSTM hybrid.
func inferStacks(features, timeSteps int) map[string]Layer {
	r := tensor.NewRNG(41)
	return map[string]Layer{
		"rptcn-style": NewSequential(
			NewTCN(r, TCNConfig{
				InChannels: features,
				Channels:   []int{12, 8},
				KernelSize: 3,
				Dropout:    0.2,
				WeightNorm: true,
			}),
			&LastStep{},
			NewDense(r, 8, 8),
			NewFeatureAttention(r, 8),
			NewDense(r, 8, 3),
		),
		"lstm": NewSequential(
			NewLSTM(r, features, 10, false),
			NewDense(r, 10, 3),
		),
		"lstm-seq": NewSequential(
			NewLSTM(r, features, 6, true),
			&LastStep{},
			NewDense(r, 6, 3),
		),
		"gru": NewSequential(
			NewGRU(r, features, 9, false),
			NewDense(r, 9, 3),
		),
		"gru-seq": NewSequential(
			NewGRU(r, features, 5, true),
			&LastStep{},
			NewDense(r, 5, 3),
		),
		"cnn-lstm": NewSequential(
			NewCausalConv1D(r, features, 8, 3, 1, false),
			&ReLU{},
			NewSpatialDropout1D(r, 0.2),
			NewLSTM(r, 8, 7, false),
			NewDense(r, 7, 3),
		),
		"dropout-tanh-sigmoid": NewSequential(
			NewLSTM(r, features, 6, false),
			NewDropout(r, 0.3),
			NewDense(r, 6, 6),
			&Tanh{},
			NewDense(r, 6, 6),
			&Sigmoid{},
			NewDense(r, 6, 3),
		),
		"flatten": NewSequential(
			NewCausalConv1D(r, features, 4, 2, 1, true),
			&Flatten{},
			NewDense(r, 4*timeSteps, 3),
		),
	}
}

func requireBitwiseTensors(t *testing.T, got, want *tensor.Tensor, what string) {
	t.Helper()
	if got.Size() != want.Size() {
		t.Fatalf("%s: size %d, want %d", what, got.Size(), want.Size())
	}
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("%s: elem %d = %g, want %g (bits %x vs %x)", what, i,
				got.Data[i], want.Data[i],
				math.Float64bits(got.Data[i]), math.Float64bits(want.Data[i]))
		}
	}
}

// TestInferForwardMatchesForward demands bitwise identity between the
// arena inference path and the training-path Forward in eval mode, for
// every architecture family and several batch sizes, including repeated
// (replayed) arena passes.
func TestInferForwardMatchesForward(t *testing.T) {
	const features, timeSteps = 4, 12
	for name, model := range inferStacks(features, timeSteps) {
		t.Run(name, func(t *testing.T) {
			arena := NewInferArena()
			for _, batch := range []int{1, 3, 7} {
				r := tensor.NewRNG(uint64(100 + batch))
				x := tensor.RandN(r, batch, features, timeSteps)
				want := model.Forward(x, false)
				for pass := 0; pass < 3; pass++ {
					arena.Reset()
					got := Infer(model, arena, x)
					requireBitwiseTensors(t, got, want, name)
				}
			}
		})
	}
}

// TestInferWorkerCountInvariance reruns arena inference under 1, 2 and 4
// workers and demands bitwise identical outputs.
func TestInferWorkerCountInvariance(t *testing.T) {
	const features, timeSteps, batch = 4, 12, 5
	for name, model := range inferStacks(features, timeSteps) {
		t.Run(name, func(t *testing.T) {
			r := tensor.NewRNG(7)
			x := tensor.RandN(r, batch, features, timeSteps)
			run := func(workers int) *tensor.Tensor {
				prev := par.SetWorkers(workers)
				defer par.SetWorkers(prev)
				arena := NewInferArena()
				out := Infer(model, arena, x)
				return out.Clone()
			}
			base := run(1)
			for _, w := range []int{2, 4} {
				requireBitwiseTensors(t, run(w), base, name)
			}
		})
	}
}

// TestInferDoesNotDisturbTraining interleaves an arena inference between
// a training forward and its backward pass and checks the gradients are
// bitwise identical to an undisturbed fit step: InferForward must not
// touch the caches Backward reads.
func TestInferDoesNotDisturbTraining(t *testing.T) {
	const features, timeSteps, batch = 4, 12, 3
	build := func() Layer {
		r := tensor.NewRNG(21)
		return NewSequential(
			NewCausalConv1D(r, features, 6, 3, 1, true),
			&ReLU{},
			NewLSTM(r, 6, 5, false),
			NewDense(r, 5, 6),
			NewFeatureAttention(r, 6),
			NewDense(r, 6, 2),
		)
	}
	r := tensor.NewRNG(22)
	x := tensor.RandN(r, batch, features, timeSteps)
	xInfer := tensor.RandN(r, 2, features, timeSteps)
	grad := tensor.RandN(r, batch, 2)

	gradsOf := func(interleave bool) []*tensor.Tensor {
		m := build()
		m.Forward(x, true)
		if interleave {
			arena := NewInferArena()
			Infer(m, arena, xInfer)
		}
		m.Backward(grad.Clone())
		var gs []*tensor.Tensor
		for _, p := range m.Params() {
			gs = append(gs, p.Grad.Clone())
		}
		return gs
	}
	clean := gradsOf(false)
	mixed := gradsOf(true)
	for i := range clean {
		requireBitwiseTensors(t, mixed[i], clean[i], "param grad")
	}
}

// TestInferArenaZeroAllocSteadyState proves a warmed-up arena forward
// performs no heap allocations, across all architecture families and at
// a batch size large enough to engage the parallel conv path.
func TestInferArenaZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation defeats escape analysis; allocation counts are meaningless")
	}
	const features, timeSteps, batch = 8, 32, 32
	for name, model := range inferStacks(features, timeSteps) {
		t.Run(name, func(t *testing.T) {
			r := tensor.NewRNG(5)
			x := tensor.RandN(r, batch, features, timeSteps)
			arena := NewInferArena()
			for i := 0; i < 3; i++ { // warm arena slots and kernel pools
				arena.Reset()
				Infer(model, arena, x)
			}
			allocs := testing.AllocsPerRun(20, func() {
				arena.Reset()
				Infer(model, arena, x)
			})
			if allocs != 0 {
				t.Fatalf("steady-state arena inference allocates %.1f times per op, want 0", allocs)
			}
		})
	}
}

// TestInferArenaShapeChangeReallocates checks an arena survives a batch
// size change by reallocating mismatched slots, and still returns
// correct values afterwards.
func TestInferArenaShapeChangeReallocates(t *testing.T) {
	const features, timeSteps = 4, 12
	r := tensor.NewRNG(31)
	model := NewSequential(NewLSTM(r, features, 6, false), NewDense(r, 6, 2))
	arena := NewInferArena()
	for _, batch := range []int{4, 1, 4} {
		x := tensor.RandN(r, batch, features, timeSteps)
		want := model.Forward(x, false)
		arena.Reset()
		got := Infer(model, arena, x)
		requireBitwiseTensors(t, got, want, "after shape change")
	}
}

// BenchmarkArenaInference measures the steady-state arena forward of the
// TCN+attention stack at serving batch size; allocs/op must be 0.
func BenchmarkArenaInference(b *testing.B) {
	const features, timeSteps, batch = 8, 32, 32
	model := inferStacks(features, timeSteps)["rptcn-style"]
	r := tensor.NewRNG(5)
	x := tensor.RandN(r, batch, features, timeSteps)
	arena := NewInferArena()
	arena.Reset()
	Infer(model, arena, x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arena.Reset()
		Infer(model, arena, x)
	}
}

// BenchmarkTrainingPathForward is the allocating baseline for
// BenchmarkArenaInference: the same model and shape through Forward.
func BenchmarkTrainingPathForward(b *testing.B) {
	const features, timeSteps, batch = 8, 32, 32
	model := inferStacks(features, timeSteps)["rptcn-style"]
	r := tensor.NewRNG(5)
	x := tensor.RandN(r, batch, features, timeSteps)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Forward(x, false)
	}
}
