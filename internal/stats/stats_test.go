package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("Mean = %g", Mean(xs))
	}
	if Variance(xs) != 4 {
		t.Fatalf("Variance = %g", Variance(xs))
	}
	if StdDev(xs) != 2 {
		t.Fatalf("StdDev = %g", StdDev(xs))
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty-slice stats should be 0")
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := Pearson(x, y); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Pearson = %g, want 1", got)
	}
	yNeg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, yNeg); math.Abs(got+1) > 1e-12 {
		t.Fatalf("Pearson = %g, want -1", got)
	}
}

func TestPearsonConstantSeriesIsZero(t *testing.T) {
	x := []float64{1, 1, 1, 1}
	y := []float64{1, 2, 3, 4}
	if got := Pearson(x, y); got != 0 {
		t.Fatalf("Pearson with constant series = %g, want 0", got)
	}
}

func TestPearsonUnequalLengthsUsesPrefix(t *testing.T) {
	x := []float64{1, 2, 3, 999}
	y := []float64{2, 4, 6}
	if got := Pearson(x, y); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Pearson prefix = %g, want 1", got)
	}
}

// Property: Pearson is symmetric and bounded in [-1, 1].
func TestPropertyPearsonSymmetricBounded(t *testing.T) {
	f := func(seed uint64) bool {
		r := seed | 1
		next := func() float64 {
			r ^= r >> 12
			r ^= r << 25
			r ^= r >> 27
			return float64((r*0x2545f4914f6cdd1d)>>11) / (1 << 53)
		}
		x := make([]float64, 32)
		y := make([]float64, 32)
		for i := range x {
			x[i] = next()
			y[i] = next()
		}
		a := Pearson(x, y)
		b := Pearson(y, x)
		return math.Abs(a-b) < 1e-12 && a >= -1-1e-12 && a <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Pearson is invariant under positive affine transforms.
func TestPropertyPearsonAffineInvariant(t *testing.T) {
	x := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	y := []float64{2, 7, 1, 8, 2, 8, 1, 8}
	base := Pearson(x, y)
	scaled := make([]float64, len(x))
	for i, v := range x {
		scaled[i] = 3*v + 10
	}
	if got := Pearson(scaled, y); math.Abs(got-base) > 1e-12 {
		t.Fatalf("affine transform changed Pearson: %g vs %g", got, base)
	}
}

func TestACFLagZeroIsOne(t *testing.T) {
	xs := []float64{1, 3, 2, 5, 4, 6, 5, 8}
	acf := ACF(xs, 3)
	if math.Abs(acf[0]-1) > 1e-12 {
		t.Fatalf("ACF[0] = %g, want 1", acf[0])
	}
	for _, v := range acf {
		if v < -1-1e-9 || v > 1+1e-9 {
			t.Fatalf("ACF out of bounds: %v", acf)
		}
	}
}

func TestACFOfAR1IsGeometric(t *testing.T) {
	// x_t = 0.8 x_{t-1} + e_t gives acf(k) ≈ 0.8^k for long series.
	const phi = 0.8
	r := uint64(99)
	next := func() float64 {
		r ^= r >> 12
		r ^= r << 25
		r ^= r >> 27
		u1 := float64((r*0x2545f4914f6cdd1d)>>11)/(1<<53) + 1e-12
		r ^= r >> 12
		r ^= r << 25
		r ^= r >> 27
		u2 := float64((r*0x2545f4914f6cdd1d)>>11) / (1 << 53)
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
	n := 20000
	xs := make([]float64, n)
	for t := 1; t < n; t++ {
		xs[t] = phi*xs[t-1] + next()
	}
	acf := ACF(xs, 3)
	for k := 1; k <= 3; k++ {
		want := math.Pow(phi, float64(k))
		if math.Abs(acf[k]-want) > 0.05 {
			t.Fatalf("ACF[%d] = %g, want ≈ %g", k, acf[k], want)
		}
	}
	// PACF of AR(1): significant at lag 1, ~0 afterwards.
	pacf := PACF(xs, 3)
	if math.Abs(pacf[0]-phi) > 0.05 {
		t.Fatalf("PACF[1] = %g, want ≈ %g", pacf[0], phi)
	}
	if math.Abs(pacf[2]) > 0.05 {
		t.Fatalf("PACF[3] = %g, want ≈ 0", pacf[2])
	}
}

func TestQuantileKnownValues(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 4 {
		t.Fatal("extreme quantiles wrong")
	}
	if got := Quantile(xs, 0.5); got != 2.5 {
		t.Fatalf("median = %g, want 2.5", got)
	}
	// Order must not matter.
	if got := Quantile([]float64{4, 1, 3, 2}, 0.5); got != 2.5 {
		t.Fatalf("median of unsorted = %g", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestBoxplotQuartilesOrdered(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	b := Boxplot(xs)
	if !(b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max) {
		t.Fatalf("quartiles out of order: %+v", b)
	}
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Fatalf("expected 100 flagged as outlier, got %v", b.Outliers)
	}
}

func TestDiffAndUndiffRoundTrip(t *testing.T) {
	xs := []float64{2, 5, 4, 9, 12, 11}
	d1 := Diff(xs, 1)
	if len(d1) != 5 || d1[0] != 3 || d1[1] != -1 {
		t.Fatalf("Diff = %v", d1)
	}
	// Integrating the differences from the first value recovers the series.
	recovered := Undiff(d1, []float64{xs[0]})
	for i, v := range recovered {
		if math.Abs(v-xs[i+1]) > 1e-12 {
			t.Fatalf("Undiff = %v, want %v", recovered, xs[1:])
		}
	}
}

func TestDiffOrderTwo(t *testing.T) {
	// Second difference of a quadratic is constant.
	xs := make([]float64, 10)
	for i := range xs {
		xs[i] = float64(i * i)
	}
	d2 := Diff(xs, 2)
	for _, v := range d2 {
		if v != 2 {
			t.Fatalf("second difference of i² = %v, want all 2s", d2)
		}
	}
}

func TestUndiffOrderTwoRoundTrip(t *testing.T) {
	xs := []float64{1, 4, 2, 8, 5, 7, 11}
	d1 := Diff(xs, 1)
	d2 := Diff(xs, 2)
	// heads: last value of original before forecasts, last value of d1.
	recovered := Undiff(d2, []float64{xs[1], d1[0]})
	for i, v := range recovered {
		if math.Abs(v-xs[i+2]) > 1e-12 {
			t.Fatalf("Undiff order 2 = %v, want %v", recovered, xs[2:])
		}
	}
}

func TestFractionBelow(t *testing.T) {
	xs := []float64{0.1, 0.4, 0.5, 0.9}
	if got := FractionBelow(xs, 0.5); got != 0.5 {
		t.Fatalf("FractionBelow = %g, want 0.5", got)
	}
	if FractionBelow(nil, 1) != 0 {
		t.Fatal("empty FractionBelow should be 0")
	}
}

// Property: quantile is monotone in q.
func TestPropertyQuantileMonotone(t *testing.T) {
	xs := []float64{9, 3, 7, 1, 8, 2, 6, 4, 5}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := Quantile(xs, q)
		if v < prev-1e-12 {
			t.Fatalf("Quantile not monotone at q=%g", q)
		}
		prev = v
	}
}
