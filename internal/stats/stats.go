// Package stats provides the time-series statistics used across the
// repository: Pearson correlation (the paper's eq. 2), autocorrelation and
// partial autocorrelation (ARIMA order selection), quantiles and boxplot
// summaries (Figs. 2–3), and differencing.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Pearson returns the Pearson correlation coefficient between x and y
// (eq. 2 of the paper): ρ(X,Y) = E[(X−μX)(Y−μY)] / (σX·σY).
// It returns 0 when either series is constant (undefined correlation).
func Pearson(x, y []float64) float64 {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	if n == 0 {
		return 0
	}
	mx := Mean(x[:n])
	my := Mean(y[:n])
	var cov, vx, vy float64
	for i := 0; i < n; i++ {
		dx := x[i] - mx
		dy := y[i] - my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// ACF returns the autocorrelation function of xs at lags 0..maxLag.
func ACF(xs []float64, maxLag int) []float64 {
	n := len(xs)
	out := make([]float64, maxLag+1)
	if n == 0 {
		return out
	}
	m := Mean(xs)
	var c0 float64
	for _, v := range xs {
		d := v - m
		c0 += d * d
	}
	if c0 == 0 {
		out[0] = 1
		return out
	}
	for lag := 0; lag <= maxLag && lag < n; lag++ {
		var c float64
		for t := lag; t < n; t++ {
			c += (xs[t] - m) * (xs[t-lag] - m)
		}
		out[lag] = c / c0
	}
	return out
}

// PACF returns the partial autocorrelation function at lags 1..maxLag via
// the Durbin–Levinson recursion.
func PACF(xs []float64, maxLag int) []float64 {
	acf := ACF(xs, maxLag)
	pacf := make([]float64, maxLag+1)
	if maxLag < 1 {
		return pacf[1:]
	}
	phi := make([][]float64, maxLag+1)
	for k := range phi {
		phi[k] = make([]float64, maxLag+1)
	}
	pacf[1] = acf[1]
	phi[1][1] = acf[1]
	for k := 2; k <= maxLag; k++ {
		num := acf[k]
		den := 1.0
		for j := 1; j < k; j++ {
			num -= phi[k-1][j] * acf[k-j]
			den -= phi[k-1][j] * acf[j]
		}
		if den == 0 {
			break
		}
		phi[k][k] = num / den
		for j := 1; j < k; j++ {
			phi[k][j] = phi[k-1][j] - phi[k][k]*phi[k-1][k-j]
		}
		pacf[k] = phi[k][k]
	}
	return pacf[1:]
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It panics on an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// BoxplotStats summarizes a sample the way Fig. 2 of the paper does:
// quartiles, whiskers at 1.5·IQR, and the mean.
type BoxplotStats struct {
	Min, Q1, Median, Q3, Max float64 // whisker ends and quartiles
	Mean                     float64
	Outliers                 []float64
}

// Boxplot computes BoxplotStats for xs. It panics on an empty slice.
func Boxplot(xs []float64) BoxplotStats {
	if len(xs) == 0 {
		panic("stats: Boxplot of empty slice")
	}
	b := BoxplotStats{
		Q1:     Quantile(xs, 0.25),
		Median: Quantile(xs, 0.50),
		Q3:     Quantile(xs, 0.75),
		Mean:   Mean(xs),
	}
	iqr := b.Q3 - b.Q1
	loFence := b.Q1 - 1.5*iqr
	hiFence := b.Q3 + 1.5*iqr
	b.Min = math.Inf(1)
	b.Max = math.Inf(-1)
	for _, v := range xs {
		if v < loFence || v > hiFence {
			b.Outliers = append(b.Outliers, v)
			continue
		}
		if v < b.Min {
			b.Min = v
		}
		if v > b.Max {
			b.Max = v
		}
	}
	// All points were outliers (degenerate); fall back to raw extremes.
	if math.IsInf(b.Min, 1) {
		b.Min = Quantile(xs, 0)
		b.Max = Quantile(xs, 1)
	}
	return b
}

// Diff returns the d-th order difference of xs. The result has
// len(xs) − d elements.
func Diff(xs []float64, d int) []float64 {
	out := append([]float64(nil), xs...)
	for k := 0; k < d; k++ {
		if len(out) <= 1 {
			return nil
		}
		next := make([]float64, len(out)-1)
		for i := 1; i < len(out); i++ {
			next[i-1] = out[i] - out[i-1]
		}
		out = next
	}
	return out
}

// Undiff inverts Diff given the d last pre-difference values (heads[i] is
// the final value of the (i)-th differenced series, i = 0..d-1, with
// heads[0] from the original series). It integrates forecasts made on a
// differenced series back to the original scale.
func Undiff(diffs []float64, heads []float64) []float64 {
	out := append([]float64(nil), diffs...)
	for k := len(heads) - 1; k >= 0; k-- {
		prev := heads[k]
		for i := range out {
			prev += out[i]
			out[i] = prev
		}
	}
	return out
}

// FractionBelow returns the fraction of xs strictly below threshold
// (the Fig. 3 statistic: % machines with CPU < 50%).
func FractionBelow(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := 0
	for _, v := range xs {
		if v < threshold {
			c++
		}
	}
	return float64(c) / float64(len(xs))
}
