package quality

import (
	"math"
	"sort"
)

// Detectors for the two failure modes of a high-dynamic forecaster:
//
//   - Mutation points (the paper's Fig. 1/8 regime shifts): an abrupt,
//     sustained level change in a signal. Detected with a two-sided
//     Page–Hinkley test over a median-filtered stream, so short bursts
//     (co-location interference spikes) do not fire it but a genuine
//     step does, within roughly MedianWidth/2 samples.
//   - Drift (esDNN's adapt-or-degrade setting): the error level or the
//     out-of-range input fraction creeping above its baseline. Detected
//     with an EWMA level against a frozen baseline distribution, with
//     warn/alarm states.

// MutationConfig tunes the Page–Hinkley mutation-point detector. The
// zero value gets usable defaults; Delta and Lambda are expressed in
// units of the signal's own scale (standard deviation estimated during
// warmup), so one configuration works for CPU percent and for residuals
// alike.
type MutationConfig struct {
	// MedianWidth is the width of the rolling-median prefilter that
	// suppresses short bursts (default 31, forced odd). A level change
	// shorter than MedianWidth/2 samples is treated as a burst, not a
	// mutation.
	MedianWidth int
	// Warmup is how many filtered samples estimate the signal scale
	// before detection arms (default 64).
	Warmup int
	// Alpha is the EWMA forgetting factor of the running level
	// (default 1/32). Slow trends (diurnal cycles) are absorbed by the
	// level; abrupt steps outrun it and accumulate.
	Alpha float64
	// Delta is the drift tolerance in scale units (default 1.5):
	// deviations below Delta·scale never accumulate. Scale is the raw
	// signal's warmup standard deviation — the filtered stream is too
	// smooth to price the tolerance in.
	Delta float64
	// Lambda is the alarm threshold in scale units (default 35).
	Lambda float64
	// MinScale floors the warmup scale estimate so a constant warmup
	// segment cannot make the detector hair-triggered (default 1e-9).
	MinScale float64
	// Cooldown suppresses re-detection for this many samples after a
	// fire while the level re-anchors (default Warmup).
	Cooldown int
}

func (c *MutationConfig) fillDefaults() {
	if c.MedianWidth <= 0 {
		c.MedianWidth = 31
	}
	if c.MedianWidth%2 == 0 {
		c.MedianWidth++
	}
	if c.Warmup <= 0 {
		c.Warmup = 64
	}
	if c.Alpha <= 0 {
		c.Alpha = 1.0 / 32
	}
	if c.Delta <= 0 {
		c.Delta = 1.5
	}
	if c.Lambda <= 0 {
		c.Lambda = 35
	}
	if c.MinScale <= 0 {
		c.MinScale = 1e-9
	}
	if c.Cooldown <= 0 {
		c.Cooldown = c.Warmup
	}
}

// PageHinkley is a two-sided Page–Hinkley mutation-point detector with a
// rolling-median prefilter and an EWMA baseline. Not safe for concurrent
// use; the engine serializes all detector pushes on its worker.
type PageHinkley struct {
	cfg    MutationConfig
	median *medianFilter

	// Warmup scale estimation (Welford over the raw signal).
	n     int
	mean  float64
	m2    float64
	scale float64

	level    float64 // EWMA of the filtered signal
	levelSet bool
	up, down float64 // one-sided cumulative sums, clipped at zero
	cooldown int
	fired    int
}

// NewPageHinkley returns an armed-after-warmup detector.
func NewPageHinkley(cfg MutationConfig) *PageHinkley {
	cfg.fillDefaults()
	return &PageHinkley{cfg: cfg, median: newMedianFilter(cfg.MedianWidth)}
}

// Push feeds one sample and reports whether a mutation point was
// detected at (or within ~MedianWidth/2 samples before) this sample.
// Non-finite samples are ignored.
func (d *PageHinkley) Push(x float64) bool {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return false
	}
	f, ok := d.median.push(x)
	if d.n < d.cfg.Warmup {
		// Scale comes from the raw signal: bursts and noise belong in
		// the tolerance, and the filtered stream underestimates both.
		d.n++
		delta := x - d.mean
		d.mean += delta / float64(d.n)
		d.m2 += delta * (x - d.mean)
		if d.n == d.cfg.Warmup {
			d.scale = math.Sqrt(d.m2 / float64(d.n-1))
			if d.scale < d.cfg.MinScale {
				d.scale = d.cfg.MinScale
			}
		}
		if ok {
			d.level, d.levelSet = f, true
		}
		return false
	}
	if !ok {
		return false
	}
	if !d.levelSet {
		d.level, d.levelSet = f, true
		return false
	}
	dev := f - d.level
	d.level += d.cfg.Alpha * dev
	if d.cooldown > 0 {
		d.cooldown--
		d.up, d.down = 0, 0
		return false
	}
	tol := d.cfg.Delta * d.scale
	d.up += dev - tol
	if d.up < 0 {
		d.up = 0
	}
	d.down += -dev - tol
	if d.down < 0 {
		d.down = 0
	}
	if d.up > d.cfg.Lambda*d.scale || d.down > d.cfg.Lambda*d.scale {
		d.up, d.down = 0, 0
		d.level = f // re-anchor on the post-mutation level
		d.cooldown = d.cfg.Cooldown
		d.fired++
		return true
	}
	return false
}

// Armed reports whether warmup completed and detection is active.
func (d *PageHinkley) Armed() bool { return d.n >= d.cfg.Warmup }

// Fired returns how many mutation points have been detected.
func (d *PageHinkley) Fired() int { return d.fired }

// Scale returns the warmup scale estimate (0 before arming).
func (d *PageHinkley) Scale() float64 { return d.scale }

// medianFilter is a fixed-width rolling median.
type medianFilter struct {
	buf     []float64
	scratch []float64
	next, n int
}

func newMedianFilter(w int) *medianFilter {
	return &medianFilter{buf: make([]float64, w), scratch: make([]float64, w)}
}

// push adds one sample; ok is false until the window is full.
func (m *medianFilter) push(x float64) (med float64, ok bool) {
	m.buf[m.next] = x
	m.next = (m.next + 1) % len(m.buf)
	if m.n < len(m.buf) {
		m.n++
		if m.n < len(m.buf) {
			return 0, false
		}
	}
	copy(m.scratch, m.buf)
	sort.Float64s(m.scratch)
	return m.scratch[len(m.scratch)/2], true
}

// DriftState is the level-drift severity ladder.
type DriftState int

// The drift states, in escalation order.
const (
	DriftOK DriftState = iota
	DriftWarn
	DriftAlarm
)

// String returns the state name.
func (s DriftState) String() string {
	switch s {
	case DriftWarn:
		return "warn"
	case DriftAlarm:
		return "alarm"
	}
	return "ok"
}

// DriftConfig tunes a DriftDetector. The zero value gets defaults.
type DriftConfig struct {
	// Baseline is how many samples establish the reference mean/std
	// before the detector arms (default 64).
	Baseline int
	// Alpha is the EWMA forgetting factor of the current level
	// (default 1/32).
	Alpha float64
	// WarnK and AlarmK are the warn/alarm thresholds in baseline
	// standard deviations above the baseline mean (defaults 2 and 3.5).
	WarnK, AlarmK float64
	// MinStd floors the baseline std — it is the smallest level scale
	// considered meaningful, so signals with a near-constant baseline
	// (e.g. an out-of-range ratio pinned at 0) only alarm on a rise of
	// at least a few MinStd (default 1e-9; set higher per signal).
	MinStd float64
}

func (c *DriftConfig) fillDefaults() {
	if c.Baseline <= 0 {
		c.Baseline = 64
	}
	if c.Alpha <= 0 {
		c.Alpha = 1.0 / 32
	}
	if c.WarnK <= 0 {
		c.WarnK = 2
	}
	if c.AlarmK <= 0 {
		c.AlarmK = 3.5
	}
	if c.MinStd <= 0 {
		c.MinStd = 1e-9
	}
}

// DriftDetector tracks a one-sided level drift: an EWMA of the signal
// compared against the mean/std of a frozen baseline window. Rising
// above mean+WarnK·std is a warning, above mean+AlarmK·std an alarm;
// falling back recovers. Not safe for concurrent use.
type DriftDetector struct {
	cfg DriftConfig

	n        int
	mean, m2 float64
	std      float64

	ewma  float64
	state DriftState
}

// NewDriftDetector returns a detector that arms after cfg.Baseline
// samples.
func NewDriftDetector(cfg DriftConfig) *DriftDetector {
	cfg.fillDefaults()
	return &DriftDetector{cfg: cfg}
}

// Push feeds one sample and returns the resulting state. Non-finite
// samples are ignored.
func (d *DriftDetector) Push(x float64) DriftState {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return d.state
	}
	if d.n < d.cfg.Baseline {
		d.n++
		delta := x - d.mean
		d.mean += delta / float64(d.n)
		d.m2 += delta * (x - d.mean)
		if d.n == d.cfg.Baseline {
			d.std = math.Sqrt(d.m2 / float64(d.n-1))
			if d.std < d.cfg.MinStd {
				d.std = d.cfg.MinStd
			}
			d.ewma = d.mean
		}
		return DriftOK
	}
	d.ewma += d.cfg.Alpha * (x - d.ewma)
	switch {
	case d.ewma > d.mean+d.cfg.AlarmK*d.std:
		d.state = DriftAlarm
	case d.ewma > d.mean+d.cfg.WarnK*d.std:
		d.state = DriftWarn
	default:
		d.state = DriftOK
	}
	return d.state
}

// State returns the current drift state.
func (d *DriftDetector) State() DriftState { return d.state }

// Level returns the current EWMA level (the baseline mean before
// arming completes).
func (d *DriftDetector) Level() float64 {
	if d.n < d.cfg.Baseline {
		return d.mean
	}
	return d.ewma
}

// Baseline returns the reference mean and std (std 0 before arming)
// and how many samples have been consumed.
func (d *DriftDetector) Baseline() (mean, std float64, samples int) {
	return d.mean, d.std, d.n
}

// Reset discards all state so the detector re-baselines from scratch —
// the right move after a model hot-swap invalidates the old error
// distribution.
func (d *DriftDetector) Reset() {
	*d = DriftDetector{cfg: d.cfg}
}
