package quality

import (
	"math"
	"strings"
	"testing"
)

func TestParseRules(t *testing.T) {
	rules, err := ParseRules(" mae <= 5 , p90_abs_err<=12@240; bias>=-2 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("got %d rules, want 3", len(rules))
	}
	want := []Rule{
		{Metric: "mae", Op: "<=", Threshold: 5},
		{Metric: "p90_abs_err", Op: "<=", Threshold: 12, Window: 240},
		{Metric: "bias", Op: ">=", Threshold: -2},
	}
	for i, r := range rules {
		if r != want[i] {
			t.Errorf("rule %d = %+v, want %+v", i, r, want[i])
		}
	}
	if s := rules[1].String(); s != "p90_abs_err<=12@240" {
		t.Errorf("String() = %q", s)
	}
	if got, err := ParseRules(""); err != nil || len(got) != 0 {
		t.Errorf("empty spec: %v %v", got, err)
	}
}

func TestParseRulesErrors(t *testing.T) {
	for _, bad := range []string{
		"mae=5",    // no operator
		"nope<=5",  // unknown metric
		"mae<=abc", // bad threshold
		"mae<=5@0", // bad window
		"mae<=5@x", // bad window
		"mae<=NaN", // NaN threshold
		"<=5",      // no metric
	} {
		if _, err := ParseRules(bad); err == nil {
			t.Errorf("ParseRules(%q) accepted", bad)
		}
	}
}

func TestEvalRuleStates(t *testing.T) {
	errs := []float64{1, -2, 3, -1, 2, 1, -3, 2} // |errs| mean = 1.875
	r := Rule{Metric: "mae", Op: "<=", Threshold: 2}

	if st := evalRule(r, errs, 256, 16); st.State != sloPending {
		t.Fatalf("below min count: %v, want pending", st.State)
	}
	st := evalRule(r, errs, 256, 4)
	if st.State != sloOK || st.Value != 1.875 || st.Count != 8 {
		t.Fatalf("ok rule: %+v", st)
	}
	r.Threshold = 1
	if st := evalRule(r, errs, 256, 4); st.State != sloBreach {
		t.Fatalf("breach rule: %v", st.State)
	}

	// Burn window: only the last 4 errors count.
	r = Rule{Metric: "mae", Op: "<=", Threshold: 2, Window: 4}
	st = evalRule(r, errs, 256, 4)
	if st.Count != 4 || st.Value != (1.0+3+2+2)/4 {
		t.Fatalf("windowed: %+v", st)
	}
}

func TestSLOMetrics(t *testing.T) {
	errs := []float64{2, -1, 0, 3, -4}
	checks := map[string]float64{
		"mae":         2, // (2+1+0+3+4)/5
		"mse":         6, // (4+1+0+9+16)/5
		"bias":        0, // (2-1+0+3-4)/5
		"abs_bias":    0,
		"p50_abs_err": 2,
		"p90_abs_err": 4,
		"p99_abs_err": 4,
		"over_ratio":  0.4, // 2 and 3
		"under_ratio": 0.4, // -1 and -4
	}
	for m, want := range checks {
		if got := sloMetric(m, errs); got != want {
			t.Errorf("%s = %v, want %v", m, got, want)
		}
	}
	if !math.IsNaN(sloMetric("bogus", errs)) {
		t.Error("unknown metric should be NaN")
	}
}

func TestAbsQuantile(t *testing.T) {
	errs := []float64{-5, 1, 2, 3, 4, -6, 7, 8, 9, 10}
	if q := absQuantile(errs, 0.5); q != 5 {
		t.Errorf("p50 = %v, want 5", q)
	}
	if q := absQuantile(errs, 0.9); q != 9 {
		t.Errorf("p90 = %v, want 9", q)
	}
	if q := absQuantile(errs, 1.0); q != 10 {
		t.Errorf("p100 = %v, want 10", q)
	}
	if q := absQuantile([]float64{3}, 0.01); q != 3 {
		t.Errorf("single = %v, want 3", q)
	}
}

func TestRuleStringRoundTrip(t *testing.T) {
	for _, spec := range []string{"mae<=5", "mse>0.25", "bias>=-1.5@32", "under_ratio<0.7"} {
		rules, err := ParseRules(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if got := rules[0].String(); got != spec {
			t.Errorf("round trip %q -> %q", spec, got)
		}
		// Canonical form parses back to the same rule.
		again, err := ParseRules(rules[0].String())
		if err != nil || again[0] != rules[0] {
			t.Errorf("reparse %q: %v %v", spec, again, err)
		}
	}
	all := strings.Join(sloMetricNames, ",")
	if !strings.Contains(all, "p90_abs_err") {
		t.Fatal("metric list incomplete")
	}
}
