package quality

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Declarative forecast-quality SLOs. A rule is a comparison over a
// statistic of the most recent resolved forecast/actual pairs — the
// burn window — e.g. "p90 of |error| over the last 240 pairs must stay
// under 12":
//
//	p90_abs_err<=12@240
//
// Rules are written metric OP threshold [@window] and separated by
// commas (or semicolons). Supported metrics:
//
//	mae          mean |forecast-actual|
//	mse          mean squared error
//	bias         mean signed error (forecast-actual; >0 over-predicts)
//	abs_bias     |bias|
//	p50_abs_err  median |error|
//	p90_abs_err  90th percentile |error|
//	p99_abs_err  99th percentile |error|
//	over_ratio   fraction of pairs with forecast > actual
//	under_ratio  fraction of pairs with forecast < actual
//
// Supported operators: <=, <, >=, >. The optional @N suffix overrides
// the burn window (default: the engine's full rolling window).

// Rule is one parsed SLO rule.
type Rule struct {
	Metric    string
	Op        string
	Threshold float64
	// Window is the burn window in resolved pairs (0 = engine default).
	Window int
}

// String renders the rule back in its canonical syntax.
func (r Rule) String() string {
	s := r.Metric + r.Op + strconv.FormatFloat(r.Threshold, 'g', -1, 64)
	if r.Window > 0 {
		s += "@" + strconv.Itoa(r.Window)
	}
	return s
}

// sloMetricNames lists the valid rule metrics.
var sloMetricNames = []string{
	"mae", "mse", "bias", "abs_bias",
	"p50_abs_err", "p90_abs_err", "p99_abs_err",
	"over_ratio", "under_ratio",
}

func validSLOMetric(m string) bool {
	for _, n := range sloMetricNames {
		if n == m {
			return true
		}
	}
	return false
}

// ParseRules parses a rule list like "mae<=5, p90_abs_err<=12@240".
// An empty string yields no rules.
func ParseRules(s string) ([]Rule, error) {
	var out []Rule
	for _, part := range strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ';' }) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := parseRule(part)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func parseRule(s string) (Rule, error) {
	var op string
	var idx int
	// Two-character operators first so "<=" does not parse as "<".
	for _, cand := range []string{"<=", ">=", "<", ">"} {
		if i := strings.Index(s, cand); i > 0 {
			op, idx = cand, i
			break
		}
	}
	if op == "" {
		return Rule{}, fmt.Errorf("quality: rule %q: want metric<=value (operators <=, <, >=, >)", s)
	}
	r := Rule{Metric: strings.TrimSpace(s[:idx]), Op: op}
	rhs := strings.TrimSpace(s[idx+len(op):])
	if at := strings.IndexByte(rhs, '@'); at >= 0 {
		w, err := strconv.Atoi(strings.TrimSpace(rhs[at+1:]))
		if err != nil || w <= 0 {
			return Rule{}, fmt.Errorf("quality: rule %q: bad window %q", s, rhs[at+1:])
		}
		r.Window = w
		rhs = strings.TrimSpace(rhs[:at])
	}
	v, err := strconv.ParseFloat(rhs, 64)
	if err != nil || math.IsNaN(v) {
		return Rule{}, fmt.Errorf("quality: rule %q: bad threshold %q", s, rhs)
	}
	r.Threshold = v
	if !validSLOMetric(r.Metric) {
		return Rule{}, fmt.Errorf("quality: rule %q: unknown metric %q (have %s)",
			s, r.Metric, strings.Join(sloMetricNames, " "))
	}
	return r, nil
}

// RuleStatus is the live evaluation of one rule.
type RuleStatus struct {
	Rule  string  `json:"rule"`
	State string  `json:"state"` // pending | ok | breach
	Value float64 `json:"value"`
	Count int     `json:"count"` // pairs the value was computed over
}

// The rule states.
const (
	sloPending = "pending"
	sloOK      = "ok"
	sloBreach  = "breach"
)

// evalRule computes the rule's metric over the last min(window, len)
// signed errors (chronological order) and compares it. minCount pairs
// are required before the rule leaves "pending".
func evalRule(r Rule, errs []float64, defaultWindow, minCount int) RuleStatus {
	w := r.Window
	if w <= 0 {
		w = defaultWindow
	}
	if w > 0 && len(errs) > w {
		errs = errs[len(errs)-w:]
	}
	st := RuleStatus{Rule: r.String(), Count: len(errs)}
	if len(errs) < minCount {
		st.State = sloPending
		return st
	}
	st.Value = sloMetric(r.Metric, errs)
	ok := false
	switch r.Op {
	case "<=":
		ok = st.Value <= r.Threshold
	case "<":
		ok = st.Value < r.Threshold
	case ">=":
		ok = st.Value >= r.Threshold
	case ">":
		ok = st.Value > r.Threshold
	}
	if ok {
		st.State = sloOK
	} else {
		st.State = sloBreach
	}
	return st
}

// sloMetric computes one metric over signed errors in chronological
// order (summation order is part of the contract: an offline
// recomputation over the same pairs must match bitwise).
func sloMetric(metric string, errs []float64) float64 {
	n := float64(len(errs))
	switch metric {
	case "mae":
		s := 0.0
		for _, e := range errs {
			s += math.Abs(e)
		}
		return s / n
	case "mse":
		s := 0.0
		for _, e := range errs {
			s += e * e
		}
		return s / n
	case "bias":
		s := 0.0
		for _, e := range errs {
			s += e
		}
		return s / n
	case "abs_bias":
		s := 0.0
		for _, e := range errs {
			s += e
		}
		return math.Abs(s / n)
	case "p50_abs_err":
		return absQuantile(errs, 0.50)
	case "p90_abs_err":
		return absQuantile(errs, 0.90)
	case "p99_abs_err":
		return absQuantile(errs, 0.99)
	case "over_ratio":
		c := 0
		for _, e := range errs {
			if e > 0 {
				c++
			}
		}
		return float64(c) / n
	case "under_ratio":
		c := 0
		for _, e := range errs {
			if e < 0 {
				c++
			}
		}
		return float64(c) / n
	}
	return math.NaN()
}

// absQuantile is the exact empirical q-quantile of |errs|: the smallest
// absolute error that at least a fraction q of the pairs lie at or
// below.
func absQuantile(errs []float64, q float64) float64 {
	abs := make([]float64, len(errs))
	for i, e := range errs {
		abs[i] = math.Abs(e)
	}
	sort.Float64s(abs)
	idx := int(math.Ceil(q*float64(len(abs)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(abs) {
		idx = len(abs) - 1
	}
	return abs[idx]
}
