package quality

import (
	"math"
	"testing"

	"repro/internal/trace"
)

// TestPageHinkleyFiresOnMutations drives the detector with the synthetic
// mutation trace and checks the acceptance criterion: a fire within two
// detector windows (2·MedianWidth samples) of every injected point, and
// zero fires on the stationary segments.
func TestPageHinkleyFiresOnMutations(t *testing.T) {
	const samples = 4000
	points := []int{1500, 2600} // step up, step back down
	e := trace.GenerateWithMutations(samples, points, 13)
	cpu := e.Series(trace.CPUUtilPercent)

	d := NewPageHinkley(MutationConfig{})
	var fires []int
	for i, v := range cpu {
		if d.Push(v) {
			fires = append(fires, i)
		}
	}
	if !d.Armed() {
		t.Fatal("detector never armed")
	}
	window := 2 * 31 // two detector windows (default MedianWidth 31)
	matched := make([]bool, len(points))
	for _, f := range fires {
		ok := false
		for i, p := range points {
			if f >= p && f <= p+window {
				matched[i], ok = true, true
			}
		}
		if !ok {
			t.Errorf("false alarm at sample %d (injected points %v)", f, points)
		}
	}
	for i, m := range matched {
		if !m {
			t.Errorf("no detection within %d samples of injected point %d (fires %v)",
				window, points[i], fires)
		}
	}
}

// TestPageHinkleyQuietOnStationary: an unmutated trace must produce zero
// fires — the generator's own mild dynamics (diurnal cycle, AR noise,
// short bursts) are not mutations.
func TestPageHinkleyQuietOnStationary(t *testing.T) {
	e := trace.GenerateWithMutations(4000, nil, 13)
	d := NewPageHinkley(MutationConfig{})
	for i, v := range e.Series(trace.CPUUtilPercent) {
		if d.Push(v) {
			t.Fatalf("false alarm at sample %d on stationary trace", i)
		}
	}
}

// TestPageHinkleyBurstImmunity: a short spike taller than the mutation
// step must not fire (the median prefilter absorbs it), while the
// sustained step right after it must.
func TestPageHinkleyBurstImmunity(t *testing.T) {
	d := NewPageHinkley(MutationConfig{})
	sig := make([]float64, 0, 1200)
	osc := func(i int) float64 { // deterministic ±1 dither so scale > 0
		if i%2 == 0 {
			return 1
		}
		return -1
	}
	for i := 0; i < 600; i++ {
		v := 20 + osc(i)
		if i >= 400 && i < 410 { // 10-sample burst, +50
			v += 50
		}
		sig = append(sig, v)
	}
	for i := 600; i < 1200; i++ { // sustained +30 step at 600
		sig = append(sig, 50+osc(i))
	}
	var fires []int
	for i, v := range sig {
		if d.Push(v) {
			fires = append(fires, i)
		}
	}
	for _, f := range fires {
		if f < 600 {
			t.Fatalf("burst fired the detector at %d", f)
		}
	}
	if len(fires) == 0 {
		t.Fatal("sustained step not detected")
	}
	if fires[0] > 600+62 {
		t.Fatalf("step at 600 detected late, at %d", fires[0])
	}
}

func TestPageHinkleyIgnoresNonFinite(t *testing.T) {
	d := NewPageHinkley(MutationConfig{MedianWidth: 3, Warmup: 4})
	for i := 0; i < 50; i++ {
		d.Push(math.NaN())
		d.Push(math.Inf(1))
		d.Push(5)
	}
	if !d.Armed() {
		t.Fatal("finite samples interleaved with NaN should arm the detector")
	}
	if d.Fired() != 0 {
		t.Fatal("constant signal fired")
	}
}

func TestDriftDetectorLadder(t *testing.T) {
	d := NewDriftDetector(DriftConfig{Baseline: 32, Alpha: 0.25})
	// Baseline: alternating 4/6 (mean 5, std ~1).
	for i := 0; i < 32; i++ {
		if st := d.Push(5 + float64(i%2*2-1)); st != DriftOK {
			t.Fatalf("state %v during baseline", st)
		}
	}
	mean, std, n := d.Baseline()
	if n != 32 || math.Abs(mean-5) > 1e-9 || std <= 0 {
		t.Fatalf("baseline mean=%v std=%v n=%d", mean, std, n)
	}
	// Level shifts to mean+3σ: should pass through warn.
	sawWarn := false
	st := DriftOK
	for i := 0; i < 40; i++ {
		st = d.Push(mean + 3*std)
		if st == DriftWarn {
			sawWarn = true
		}
	}
	if !sawWarn || st != DriftWarn {
		t.Fatalf("3σ level: sawWarn=%v final=%v, want warn", sawWarn, st)
	}
	// Level at mean+6σ: alarm.
	for i := 0; i < 60; i++ {
		st = d.Push(mean + 6*std)
	}
	if st != DriftAlarm {
		t.Fatalf("6σ level gave %v, want alarm", st)
	}
	// Recovery.
	for i := 0; i < 200; i++ {
		st = d.Push(mean)
	}
	if st != DriftOK {
		t.Fatalf("recovery gave %v, want ok", st)
	}
	d.Reset()
	if _, _, n := d.Baseline(); n != 0 {
		t.Fatal("Reset did not clear baseline")
	}
}

func TestDriftDetectorMinStdFloor(t *testing.T) {
	// A constant-zero baseline (OOR ratio pinned at 0) with MinStd 0.02:
	// a rise to 0.04 (2σ) warns, 0.1 (5σ) alarms, 0.01 stays OK.
	d := NewDriftDetector(DriftConfig{Baseline: 16, Alpha: 0.5, MinStd: 0.02})
	for i := 0; i < 16; i++ {
		d.Push(0)
	}
	st := DriftOK
	for i := 0; i < 30; i++ {
		st = d.Push(0.01)
	}
	if st != DriftOK {
		t.Fatalf("0.01 ratio gave %v, want ok", st)
	}
	for i := 0; i < 30; i++ {
		st = d.Push(0.1)
	}
	if st != DriftAlarm {
		t.Fatalf("0.1 ratio gave %v, want alarm", st)
	}
}
