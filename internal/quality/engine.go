// Package quality is the online forecast-quality engine: it closes the
// loop between served forecasts and the ground truth that arrives later.
//
// Every served forecast is recorded in a pending store keyed by
// (entity, target sample time). As actuals arrive — explicitly via
// Observe, or implicitly when callers send fresh history windows that
// overlap previously forecast timestamps — pending forecasts resolve
// into (forecast, actual) pairs that stream into rolling per-entity,
// per-horizon-step error windows (MAE, MSE, signed bias, over/under
// counts, p90 |error|).
//
// On top of the resolved stream sit the detectors RPTCN's high-dynamic
// premise demands: a Page–Hinkley mutation-point detector on input
// statistics and on residuals (the paper's regime shifts), an
// error-level drift detector with warn/alarm states, and an input
// out-of-range drift detector (the normalizer leaving its training
// bounds — the leading indicator of silent degradation). A declarative
// SLO rule engine (see slo.go) evaluates burn-window error statistics
// after every resolution.
//
// State transitions emit run-journal events (internal/obs/runlog) and
// metrics (internal/obs); the full picture is available as a Status
// snapshot, served by the HTTP layer as /debug/quality.
//
// The engine runs on a single worker goroutine fed by a bounded queue:
// the serving hot path only enqueues (non-blocking — overflow is
// counted and dropped, never waited on), so steady-state forecast
// latency is unaffected. All state is worker-owned; given the same
// event sequence the engine is fully deterministic.
package quality

import (
	"log/slog"
	"math"
	"sort"
	"strconv"
	"sync"

	"repro/internal/obs"
	"repro/internal/obs/runlog"
)

// Config configures an Engine. The zero value of every field gets a
// usable default except Horizon, which must match the predictor.
type Config struct {
	// Horizon is the number of steps per forecast (required, ≥ 1).
	Horizon int
	// Window is the rolling resolved-pair window per statistic ring
	// (default 256).
	Window int
	// MaxEntities bounds how many distinct entities get their own
	// windows and detectors (default 32). Further entities fold into
	// the "_overflow" pseudo-entity so label cardinality stays bounded.
	MaxEntities int
	// MaxPending bounds the pending target-times per entity
	// (default 4096); forecasts beyond it are dropped and counted.
	MaxPending int
	// MaxAge expires pending forecasts whose target time lags the
	// entity's newest observation by more than this many samples
	// (default 4096).
	MaxAge int64
	// Mutation tunes the input-statistics and residual mutation-point
	// detectors.
	Mutation MutationConfig
	// ErrorDrift tunes the |error|-level drift detector.
	ErrorDrift DriftConfig
	// InputDrift tunes the out-of-range-ratio drift detector
	// (default MinStd 0.02: a ratio rise under ~4% never warns).
	InputDrift DriftConfig
	// Rules are the SLO rules evaluated over the aggregate resolved
	// stream (see ParseRules).
	Rules []Rule
	// SLOMinCount is how many resolved pairs a rule needs before it
	// leaves "pending" (default 16).
	SLOMinCount int
	// QueueSize bounds the event queue between the serving path and
	// the worker (default 4096).
	QueueSize int
	// Registry receives the engine's metrics (default obs.Default()).
	Registry *obs.Registry
	// Journal, when set, receives drift and SLO state-transition
	// events (runlog.TypeDrift / runlog.TypeSLO).
	Journal *runlog.Run
	// Log receives transition warnings (default obs.Logger("quality")).
	Log *slog.Logger
	// Events, when set, receives every mutation fire and drift state
	// transition as it happens. The callback runs on the engine's
	// worker goroutine: it must return quickly and never block (hand
	// off to a channel or goroutine for anything heavier), or the
	// quality pipeline stalls behind it.
	Events func(Event)
}

// Event is one detector transition published to Config.Events. It is
// the subscription surface the adaptation supervisor (internal/adapt)
// hangs off: mutation fires and drift escalations are the triggers for
// background retraining.
type Event struct {
	// Kind is "mutation" (a Page–Hinkley detector fired) or "drift"
	// (a level detector changed state).
	Kind string
	// Signal identifies the watched series: "input" or "residual" for
	// mutations; "error" or "input" for drift.
	Signal string
	// Entity is the entity whose detector fired (mutation events; drift
	// detectors are global and leave it empty).
	Entity string
	// T is the sample time of the triggering observation.
	T int64
	// State is the new drift state ("ok"/"warn"/"alarm"); empty for
	// mutations.
	State string
}

func (c *Config) fillDefaults() {
	if c.Horizon <= 0 {
		c.Horizon = 1
	}
	if c.Window <= 0 {
		c.Window = 256
	}
	if c.MaxEntities <= 0 {
		c.MaxEntities = 32
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 4096
	}
	if c.MaxAge <= 0 {
		c.MaxAge = 4096
	}
	if c.SLOMinCount <= 0 {
		c.SLOMinCount = 16
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 4096
	}
	if c.InputDrift.MinStd <= 0 {
		c.InputDrift.MinStd = 0.02
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
	if c.Log == nil {
		c.Log = obs.Logger("quality")
	}
}

// event kinds.
const (
	evForecast = iota
	evObserve
	evInput
	evStatus
	evFlush
)

type event struct {
	kind   int
	entity string
	t      int64
	values []float64 // forecast (evForecast) or actuals (evObserve)
	mean   float64   // evInput: input-window mean of the target indicator
	oor    float64   // evInput: out-of-range ratio
	hasOOR bool
	reply  chan StatusReport
	done   chan struct{}
}

// pendingPred is one recorded forecast step awaiting its actual.
type pendingPred struct {
	step     int // 1-based horizon step
	issuedAt int64
	value    float64
}

// entityState is the worker-owned per-entity record.
type entityState struct {
	name    string
	pending map[int64][]pendingPred // keyed by target sample time
	lastT   int64
	hasT    bool

	steps []ring // per horizon step, signed errors
	all   ring   // all steps

	inputDet *PageHinkley
	residDet *PageHinkley
	// Recent detection times, newest last, bounded.
	inputFires []int64
	residFires []int64

	sinceSweep int // observe events since the last expiry sweep
}

// Engine is the online evaluation engine. All exported methods are safe
// for concurrent use.
type Engine struct {
	cfg Config

	ch      chan event
	stop    chan struct{}
	stopped chan struct{}
	once    sync.Once

	// Metrics (concurrency-safe; set from the worker and collector).
	resolved   *obs.Counter
	expired    *obs.Counter
	droppedEv  *obs.Counter
	droppedPen *obs.Counter
	invalid    *obs.Counter
	pendingG   *obs.Gauge
	mutInput   *obs.Counter
	mutResid   *obs.Counter
	errDriftG  *obs.Gauge
	inDriftG   *obs.Gauge

	// Worker-owned state.
	entities map[string]*entityState
	order    []string
	agg      ring
	errDrift *DriftDetector
	inDrift  *DriftDetector
	sloState []string // last state per rule, for transition detection
	lastT    int64
	hasT     bool
}

// New starts an engine (one worker goroutine; stop it with Close).
func New(cfg Config) *Engine {
	cfg.fillDefaults()
	reg := cfg.Registry
	e := &Engine{
		cfg:     cfg,
		ch:      make(chan event, cfg.QueueSize),
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
		resolved: reg.Counter("rptcn_quality_resolved_pairs_total",
			"Forecast/actual pairs resolved by the quality engine."),
		expired: reg.Counter("rptcn_quality_expired_forecasts_total",
			"Pending forecasts that aged out before an actual arrived."),
		droppedEv: reg.Counter("rptcn_quality_dropped_events_total",
			"Quality events dropped because the engine queue was full."),
		droppedPen: reg.Counter("rptcn_quality_dropped_forecasts_total",
			"Forecasts dropped because an entity's pending store was full."),
		invalid: reg.Counter("rptcn_quality_invalid_actuals_total",
			"Observed actuals discarded for being non-finite."),
		pendingG: reg.Gauge("rptcn_quality_pending_forecasts",
			"Forecast steps currently awaiting ground truth."),
		mutInput: reg.Counter("rptcn_quality_mutations_total",
			"Mutation points detected, by signal.", obs.L("signal", "input")),
		mutResid: reg.Counter("rptcn_quality_mutations_total",
			"Mutation points detected, by signal.", obs.L("signal", "residual")),
		errDriftG: reg.Gauge("rptcn_quality_drift_state",
			"Drift state by signal: 0 ok, 1 warn, 2 alarm.", obs.L("signal", "error")),
		inDriftG: reg.Gauge("rptcn_quality_drift_state",
			"Drift state by signal: 0 ok, 1 warn, 2 alarm.", obs.L("signal", "input")),
		entities: make(map[string]*entityState),
		agg:      newRing(cfg.Window),
		errDrift: NewDriftDetector(cfg.ErrorDrift),
		inDrift:  NewDriftDetector(cfg.InputDrift),
		sloState: make([]string, len(cfg.Rules)),
	}
	for i := range e.sloState {
		e.sloState[i] = sloPending
		reg.Gauge("rptcn_quality_slo_ok",
			"1 while the SLO rule holds (or is pending), 0 while breached.",
			obs.L("rule", cfg.Rules[i].String())).Set(1)
	}
	// Per-step and aggregate error gauges refresh at scrape time from a
	// live status snapshot, so /metrics always shows current windows.
	reg.RegisterCollector(func() {
		st, ok := e.status()
		if !ok {
			return
		}
		set := func(s StepStats, label string) {
			reg.Gauge("rptcn_quality_mae",
				"Rolling MAE of resolved forecasts by horizon step.", obs.L("step", label)).Set(s.MAE)
			reg.Gauge("rptcn_quality_bias",
				"Rolling signed mean error (forecast-actual) by horizon step.", obs.L("step", label)).Set(s.Bias)
		}
		set(st.Aggregate, "all")
		for _, s := range st.Steps {
			set(s, strconv.Itoa(s.Step))
		}
	})
	go e.run()
	return e
}

// RecordForecast registers a served forecast for entity issued at
// sample time issuedAt: forecast[k] predicts time issuedAt+k+1. The
// slice is copied.
func (e *Engine) RecordForecast(entity string, issuedAt int64, forecast []float64) {
	if len(forecast) == 0 {
		return
	}
	vals := make([]float64, len(forecast))
	copy(vals, forecast)
	e.send(event{kind: evForecast, entity: entity, t: issuedAt, values: vals})
}

// Observe feeds ground truth for entity: actuals[i] is the target
// indicator's value at sample time t0+i. Matching pending forecasts
// resolve into error pairs. The slice is copied.
func (e *Engine) Observe(entity string, t0 int64, actuals []float64) {
	if len(actuals) == 0 {
		return
	}
	vals := make([]float64, len(actuals))
	copy(vals, actuals)
	e.send(event{kind: evObserve, entity: entity, t: t0, values: vals})
}

// ObserveInput feeds per-request input statistics at sample time t: the
// input window's target-indicator mean (for the mutation detector) and
// the fraction of input values outside the training normalization
// bounds (for the input drift detector; pass hasOOR false when bounds
// are unknown).
func (e *Engine) ObserveInput(entity string, t int64, mean, oorRatio float64, hasOOR bool) {
	e.send(event{kind: evInput, entity: entity, t: t, mean: mean, oor: oorRatio, hasOOR: hasOOR})
}

// send enqueues without blocking; overflow is counted, not waited on.
func (e *Engine) send(ev event) {
	select {
	case e.ch <- ev:
	case <-e.stopped:
	default:
		e.droppedEv.Inc()
	}
}

// Flush blocks until every event enqueued before the call has been
// processed (no-op after Close). Tests and snapshot paths use it to
// make the asynchronous pipeline deterministic.
func (e *Engine) Flush() {
	done := make(chan struct{})
	select {
	case e.ch <- event{kind: evFlush, done: done}:
	case <-e.stopped:
		return
	}
	select {
	case <-done:
	case <-e.stopped:
	}
}

// Status returns a consistent snapshot of every window, detector, and
// SLO rule, after draining already-enqueued events. After Close it
// returns the zero report.
func (e *Engine) Status() StatusReport {
	st, _ := e.status()
	return st
}

func (e *Engine) status() (StatusReport, bool) {
	reply := make(chan StatusReport, 1)
	select {
	case e.ch <- event{kind: evStatus, reply: reply}:
	case <-e.stopped:
		return StatusReport{}, false
	}
	select {
	case st := <-reply:
		return st, true
	case <-e.stopped:
		return StatusReport{}, false
	}
}

// Close stops the worker and waits for it to exit. Idempotent; events
// sent after Close are discarded.
func (e *Engine) Close() error {
	e.once.Do(func() {
		close(e.stop)
		<-e.stopped
	})
	return nil
}

// run is the worker loop; it owns every map, ring, and detector.
func (e *Engine) run() {
	defer close(e.stopped)
	for {
		select {
		case ev := <-e.ch:
			e.handle(ev)
		case <-e.stop:
			// Serve already-queued flushes/statuses so no caller blocks,
			// then exit.
			for {
				select {
				case ev := <-e.ch:
					e.handle(ev)
				default:
					return
				}
			}
		}
	}
}

func (e *Engine) handle(ev event) {
	switch ev.kind {
	case evForecast:
		e.recordForecast(ev)
	case evObserve:
		e.observe(ev)
	case evInput:
		e.observeInput(ev)
	case evStatus:
		ev.reply <- e.buildStatus()
	case evFlush:
		close(ev.done)
	}
}

// entity returns (creating if needed) the state for name, folding the
// overflow beyond MaxEntities into "_overflow".
func (e *Engine) entity(name string) *entityState {
	if name == "" {
		name = "_default"
	}
	if ent, ok := e.entities[name]; ok {
		return ent
	}
	if len(e.entities) >= e.cfg.MaxEntities {
		name = "_overflow"
		if ent, ok := e.entities[name]; ok {
			return ent
		}
	}
	ent := &entityState{
		name:     name,
		pending:  make(map[int64][]pendingPred),
		steps:    make([]ring, e.cfg.Horizon),
		all:      newRing(e.cfg.Window),
		inputDet: NewPageHinkley(e.cfg.Mutation),
		residDet: NewPageHinkley(e.cfg.Mutation),
	}
	for i := range ent.steps {
		ent.steps[i] = newRing(e.cfg.Window)
	}
	e.entities[name] = ent
	e.order = append(e.order, name)
	return ent
}

func (e *Engine) recordForecast(ev event) {
	ent := e.entity(ev.entity)
	for k, v := range ev.values {
		tt := ev.t + int64(k) + 1
		preds, exists := ent.pending[tt]
		if !exists && len(ent.pending) >= e.cfg.MaxPending {
			e.droppedPen.Inc()
			continue
		}
		step := k + 1
		replaced := false
		for i := range preds {
			// A re-sent forecast for the same (issue time, step)
			// replaces rather than double-counts.
			if preds[i].issuedAt == ev.t && preds[i].step == step {
				preds[i].value = v
				replaced = true
				break
			}
		}
		if !replaced {
			preds = append(preds, pendingPred{step: step, issuedAt: ev.t, value: v})
		}
		ent.pending[tt] = preds
	}
	e.pendingG.Set(float64(e.pendingCount()))
}

func (e *Engine) observe(ev event) {
	ent := e.entity(ev.entity)
	resolvedAny := false
	for i, actual := range ev.values {
		tt := ev.t + int64(i)
		if tt > ent.lastT || !ent.hasT {
			ent.lastT, ent.hasT = tt, true
		}
		if tt > e.lastT || !e.hasT {
			e.lastT, e.hasT = tt, true
		}
		preds, ok := ent.pending[tt]
		if !ok {
			continue
		}
		if math.IsNaN(actual) || math.IsInf(actual, 0) {
			e.invalid.Inc()
			continue
		}
		delete(ent.pending, tt)
		for _, p := range preds {
			err := p.value - actual
			if math.IsNaN(err) || math.IsInf(err, 0) {
				e.invalid.Inc()
				continue
			}
			resolvedAny = true
			e.resolved.Inc()
			ent.steps[p.step-1].push(err)
			ent.all.push(err)
			e.agg.push(err)
			// The residual mutation detector watches the freshest
			// signal: step-1 errors, indexed by target time.
			if p.step == 1 && ent.residDet.Push(err) {
				e.fireMutation(ent, "residual", tt, &ent.residFires, e.mutResid)
			}
			old := e.errDrift.State()
			if now := e.errDrift.Push(math.Abs(err)); now != old {
				e.driftTransition("error", old, now, e.errDrift, e.errDriftG, tt)
			}
		}
	}
	// Periodic expiry sweep: forecasts whose actual never arrived.
	ent.sinceSweep++
	if ent.sinceSweep >= 64 {
		ent.sinceSweep = 0
		e.sweep(ent)
	}
	if resolvedAny {
		e.evalSLO()
	}
	e.pendingG.Set(float64(e.pendingCount()))
}

func (e *Engine) observeInput(ev event) {
	ent := e.entity(ev.entity)
	if ent.inputDet.Push(ev.mean) {
		e.fireMutation(ent, "input", ev.t, &ent.inputFires, e.mutInput)
	}
	if ev.hasOOR {
		old := e.inDrift.State()
		if now := e.inDrift.Push(ev.oor); now != old {
			e.driftTransition("input", old, now, e.inDrift, e.inDriftG, ev.t)
		}
	}
}

// sweep expires pending entries older than lastT-MaxAge.
func (e *Engine) sweep(ent *entityState) {
	if !ent.hasT {
		return
	}
	cutoff := ent.lastT - e.cfg.MaxAge
	for tt, preds := range ent.pending {
		if tt < cutoff {
			delete(ent.pending, tt)
			e.expired.Add(float64(len(preds)))
		}
	}
}

// fireMutation records one detector fire: bounded recent-times list,
// counter, journal event, log line.
func (e *Engine) fireMutation(ent *entityState, signal string, t int64, fires *[]int64, c *obs.Counter) {
	*fires = append(*fires, t)
	if len(*fires) > 32 {
		*fires = (*fires)[len(*fires)-32:]
	}
	c.Inc()
	e.cfg.Journal.Log(runlog.TypeDrift, map[string]any{
		"kind": "mutation", "signal": signal, "entity": ent.name, "t": t,
	})
	e.cfg.Log.Warn("mutation point detected", "signal", signal, "entity", ent.name, "t", t)
	if e.cfg.Events != nil {
		e.cfg.Events(Event{Kind: "mutation", Signal: signal, Entity: ent.name, T: t})
	}
}

// driftTransition records one drift state change.
func (e *Engine) driftTransition(signal string, old, now DriftState, d *DriftDetector, g *obs.Gauge, t int64) {
	g.Set(float64(now))
	mean, std, _ := d.Baseline()
	e.cfg.Journal.Log(runlog.TypeDrift, map[string]any{
		"kind": "level", "signal": signal, "from": old.String(), "state": now.String(),
		"level": d.Level(), "baseline_mean": mean, "baseline_std": std, "t": t,
	})
	e.cfg.Log.Warn("drift state change", "signal", signal, "from", old.String(),
		"state", now.String(), "level", d.Level(), "t", t)
	if e.cfg.Events != nil {
		e.cfg.Events(Event{Kind: "drift", Signal: signal, T: t, State: now.String()})
	}
}

// evalSLO re-evaluates every rule over the aggregate window and emits
// transitions.
func (e *Engine) evalSLO() {
	if len(e.cfg.Rules) == 0 {
		return
	}
	errs := e.agg.ordered(nil)
	for i, r := range e.cfg.Rules {
		st := evalRule(r, errs, e.cfg.Window, e.cfg.SLOMinCount)
		if st.State == e.sloState[i] {
			continue
		}
		old := e.sloState[i]
		e.sloState[i] = st.State
		ok := 1.0
		if st.State == sloBreach {
			ok = 0
		}
		e.cfg.Registry.Gauge("rptcn_quality_slo_ok",
			"1 while the SLO rule holds (or is pending), 0 while breached.",
			obs.L("rule", st.Rule)).Set(ok)
		e.cfg.Registry.Counter("rptcn_quality_slo_transitions_total",
			"SLO rule state transitions.", obs.L("rule", st.Rule)).Inc()
		e.cfg.Journal.Log(runlog.TypeSLO, map[string]any{
			"rule": st.Rule, "from": old, "state": st.State,
			"value": st.Value, "count": st.Count, "t": e.lastT,
		})
		e.cfg.Log.Warn("slo transition", "rule", st.Rule, "from", old,
			"state", st.State, "value", st.Value)
	}
}

func (e *Engine) pendingCount() int {
	n := 0
	for _, ent := range e.entities {
		for _, preds := range ent.pending {
			n += len(preds)
		}
	}
	return n
}

// ring is a fixed-capacity chronological buffer of signed errors.
type ring struct {
	buf     []float64
	next, n int
}

func newRing(capacity int) ring { return ring{buf: make([]float64, capacity)} }

func (r *ring) push(v float64) {
	r.buf[r.next] = v
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// ordered appends the contents oldest→newest to dst and returns it.
func (r *ring) ordered(dst []float64) []float64 {
	if r.n < len(r.buf) {
		return append(dst, r.buf[:r.n]...)
	}
	dst = append(dst, r.buf[r.next:]...)
	return append(dst, r.buf[:r.next]...)
}

// StepStats summarizes one rolling window of resolved pairs. Every
// statistic is computed over the window in chronological order, so an
// offline recomputation over the same pairs matches bitwise.
type StepStats struct {
	// Step is the 1-based horizon step (0 for all steps combined).
	Step  int     `json:"step"`
	Count int     `json:"count"`
	MAE   float64 `json:"mae"`
	MSE   float64 `json:"mse"`
	// Bias is the signed mean error, forecast-actual: positive means
	// over-prediction (wasted allocation), negative under-prediction
	// (SLA risk) — the asymmetry the cost-aware provisioning literature
	// prices differently.
	Bias      float64 `json:"bias"`
	Over      int     `json:"over"`
	Under     int     `json:"under"`
	P90AbsErr float64 `json:"p90_abs_err"`
}

// statsOf computes StepStats over chronological signed errors.
func statsOf(step int, errs []float64) StepStats {
	st := StepStats{Step: step, Count: len(errs)}
	if len(errs) == 0 {
		return st
	}
	var sumAbs, sumSq, sum float64
	for _, e := range errs {
		sumAbs += math.Abs(e)
		sumSq += e * e
		sum += e
		if e > 0 {
			st.Over++
		} else if e < 0 {
			st.Under++
		}
	}
	n := float64(len(errs))
	st.MAE = sumAbs / n
	st.MSE = sumSq / n
	st.Bias = sum / n
	st.P90AbsErr = absQuantile(errs, 0.90)
	return st
}

// DriftStatus is the live state of one drift detector.
type DriftStatus struct {
	State        string  `json:"state"`
	Level        float64 `json:"level"`
	BaselineMean float64 `json:"baseline_mean"`
	BaselineStd  float64 `json:"baseline_std"`
	Samples      int     `json:"samples"`
}

func driftStatus(d *DriftDetector) DriftStatus {
	mean, std, n := d.Baseline()
	return DriftStatus{
		State: d.State().String(), Level: d.Level(),
		BaselineMean: mean, BaselineStd: std, Samples: n,
	}
}

// EntityStatus is one entity's live quality picture.
type EntityStatus struct {
	Entity  string `json:"entity"`
	LastT   int64  `json:"last_t"`
	Pending int    `json:"pending"`
	// All aggregates every horizon step; Steps break it down.
	All   StepStats   `json:"all"`
	Steps []StepStats `json:"steps"`
	// Recent mutation-point detection times (sample time), newest last.
	InputMutations    []int64 `json:"input_mutations,omitempty"`
	ResidualMutations []int64 `json:"residual_mutations,omitempty"`
}

// StatusReport is the full engine snapshot behind /debug/quality.
type StatusReport struct {
	// Time is the newest observed sample time across entities.
	Time     int64  `json:"t"`
	Pending  int    `json:"pending"`
	Resolved uint64 `json:"resolved_pairs"`
	Expired  uint64 `json:"expired_forecasts"`
	Dropped  uint64 `json:"dropped_events"`
	// Aggregate covers all entities and steps; Steps is the per-step
	// breakdown over all entities.
	Aggregate  StepStats      `json:"aggregate"`
	Steps      []StepStats    `json:"steps"`
	ErrorDrift DriftStatus    `json:"error_drift"`
	InputDrift DriftStatus    `json:"input_drift"`
	SLO        []RuleStatus   `json:"slo,omitempty"`
	Entities   []EntityStatus `json:"entities,omitempty"`
}

func (e *Engine) buildStatus() StatusReport {
	st := StatusReport{
		Time:       e.lastT,
		Pending:    e.pendingCount(),
		Resolved:   uint64(e.resolved.Value()),
		Expired:    uint64(e.expired.Value()),
		Dropped:    uint64(e.droppedEv.Value()),
		Aggregate:  statsOf(0, e.agg.ordered(nil)),
		ErrorDrift: driftStatus(e.errDrift),
		InputDrift: driftStatus(e.inDrift),
	}
	// Per-step aggregates across entities: concatenate entity rings in
	// entity order, then per-entity chronological order. (Cross-entity
	// interleaving is not reconstructible from per-entity rings; the
	// canonical chronological stream is the aggregate ring.)
	for k := 1; k <= e.cfg.Horizon; k++ {
		var errs []float64
		for _, name := range e.order {
			errs = e.entities[name].steps[k-1].ordered(errs)
		}
		st.Steps = append(st.Steps, statsOf(k, errs))
	}
	if len(e.cfg.Rules) > 0 {
		errs := e.agg.ordered(nil)
		for _, r := range e.cfg.Rules {
			st.SLO = append(st.SLO, evalRule(r, errs, e.cfg.Window, e.cfg.SLOMinCount))
		}
	}
	names := append([]string(nil), e.order...)
	sort.Strings(names)
	for _, name := range names {
		ent := e.entities[name]
		es := EntityStatus{
			Entity: name, LastT: ent.lastT,
			All:               statsOf(0, ent.all.ordered(nil)),
			InputMutations:    append([]int64(nil), ent.inputFires...),
			ResidualMutations: append([]int64(nil), ent.residFires...),
		}
		for _, preds := range ent.pending {
			es.Pending += len(preds)
		}
		for k := 1; k <= e.cfg.Horizon; k++ {
			es.Steps = append(es.Steps, statsOf(k, ent.steps[k-1].ordered(nil)))
		}
		st.Entities = append(st.Entities, es)
	}
	return st
}
