package quality

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/runlog"
)

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	e := New(cfg)
	t.Cleanup(func() { e.Close() })
	return e
}

// TestEngineMatchesOfflineRecomputation drives the engine with a
// forecast/observe stream and checks that its rolling windows match an
// offline recomputation bitwise (==) — the acceptance criterion.
func TestEngineMatchesOfflineRecomputation(t *testing.T) {
	const horizon, window = 3, 64
	e := newTestEngine(t, Config{Horizon: horizon, Window: window})

	// Offline mirror of the resolution semantics: pending forecasts by
	// target time in insertion order; resolution in target-time order.
	type pred struct {
		step  int
		value float64
	}
	pending := map[int64][]pred{}
	var resolved []float64              // all steps, chronological
	stepResolved := map[int][]float64{} // per step

	series := func(tt int64) float64 { // deterministic pseudo-workload
		f := float64(tt)
		return 30 + 10*math.Sin(f/7) + 3*math.Sin(f/3)
	}
	forecast := func(tt int64, k int) float64 { // deliberately imperfect
		return series(tt+int64(k)) + 0.5*float64(k) + math.Sin(float64(tt))
	}

	for tt := int64(0); tt < 500; tt++ {
		actual := series(tt)
		e.Observe("m1", tt, []float64{actual})
		if preds, ok := pending[tt]; ok {
			delete(pending, tt)
			for _, p := range preds {
				err := p.value - actual
				resolved = append(resolved, err)
				stepResolved[p.step] = append(stepResolved[p.step], err)
			}
		}
		fc := make([]float64, horizon)
		for k := range fc {
			fc[k] = forecast(tt, k+1)
			pending[tt+int64(k)+1] = append(pending[tt+int64(k)+1], pred{step: k + 1, value: fc[k]})
		}
		e.RecordForecast("m1", tt, fc)
	}
	e.Flush()
	st := e.Status()

	offline := func(errs []float64) StepStats {
		if len(errs) > window {
			errs = errs[len(errs)-window:]
		}
		return statsOf(0, errs)
	}
	want := offline(resolved)
	if st.Aggregate.Count != want.Count || st.Aggregate.MAE != want.MAE ||
		st.Aggregate.MSE != want.MSE || st.Aggregate.Bias != want.Bias ||
		st.Aggregate.P90AbsErr != want.P90AbsErr {
		t.Fatalf("aggregate %+v != offline %+v", st.Aggregate, want)
	}
	if st.Aggregate.Over+st.Aggregate.Under > st.Aggregate.Count {
		t.Fatal("over/under counts exceed window")
	}
	for k := 1; k <= horizon; k++ {
		want := offline(stepResolved[k])
		got := st.Steps[k-1]
		if got.Step != k || got.MAE != want.MAE || got.Bias != want.Bias || got.Count != want.Count {
			t.Fatalf("step %d: %+v != offline %+v", k, got, want)
		}
	}
	if int(st.Resolved) != len(resolved) {
		t.Fatalf("resolved = %d, want %d", st.Resolved, len(resolved))
	}
	if st.Pending != len(pending)*horizon-(horizon-1)*horizon/2 {
		// Outstanding: 3 target times with 3+2+1 steps... just sanity:
		t.Logf("pending=%d (engine) vs %d target times (offline)", st.Pending, len(pending))
	}
	if len(st.Entities) != 1 || st.Entities[0].Entity != "m1" {
		t.Fatalf("entities = %+v", st.Entities)
	}
	if st.Entities[0].All.MAE != want.MAE {
		// Single entity: entity window must equal aggregate window.
		t.Fatalf("entity MAE %v != aggregate %v", st.Entities[0].All.MAE, st.Aggregate.MAE)
	}
}

// TestEngineSelfJoin: ground truth arriving as overlapping history
// windows (the serving self-join path) must resolve each target exactly
// once.
func TestEngineSelfJoin(t *testing.T) {
	e := newTestEngine(t, Config{Horizon: 2, Window: 32})
	e.RecordForecast("c1", 10, []float64{5, 6}) // targets 11, 12
	// Overlapping windows: [8..11], then [9..12] — target 11 appears in
	// both, but must only resolve from the first.
	e.Observe("c1", 8, []float64{1, 1, 1, 4}) // resolves t=11 (err 5-4=1)
	e.Observe("c1", 9, []float64{1, 1, 4, 7}) // resolves t=12 (err 6-7=-1)
	e.Flush()
	st := e.Status()
	if st.Resolved != 2 {
		t.Fatalf("resolved = %d, want 2", st.Resolved)
	}
	if st.Aggregate.MAE != 1 || st.Aggregate.Bias != 0 {
		t.Fatalf("aggregate = %+v, want MAE 1 bias 0", st.Aggregate)
	}
	if st.Steps[0].Over != 1 || st.Steps[1].Under != 1 {
		t.Fatalf("steps = %+v", st.Steps)
	}
	if st.Pending != 0 {
		t.Fatalf("pending = %d, want 0", st.Pending)
	}
}

// TestEngineDedupe: re-sending a forecast for the same (issue time,
// step) replaces rather than double-counts.
func TestEngineDedupe(t *testing.T) {
	e := newTestEngine(t, Config{Horizon: 1, Window: 32})
	e.RecordForecast("m1", 5, []float64{10})
	e.RecordForecast("m1", 5, []float64{12}) // retry with newer value
	e.Observe("m1", 6, []float64{11})
	e.Flush()
	st := e.Status()
	if st.Resolved != 1 {
		t.Fatalf("resolved = %d, want 1 (dedupe)", st.Resolved)
	}
	if st.Aggregate.Bias != 1 { // 12-11, the replacement value
		t.Fatalf("bias = %v, want 1", st.Aggregate.Bias)
	}
}

// TestEngineExpiry: pending forecasts whose actuals never arrive age out
// and are counted.
func TestEngineExpiry(t *testing.T) {
	e := newTestEngine(t, Config{Horizon: 1, Window: 32, MaxAge: 16})
	e.RecordForecast("m1", 0, []float64{10}) // target t=1, never observed
	// 64+ observes far past MaxAge trigger the periodic sweep.
	for tt := int64(100); tt < 170; tt++ {
		e.Observe("m1", tt, []float64{1})
	}
	e.Flush()
	st := e.Status()
	if st.Expired != 1 {
		t.Fatalf("expired = %d, want 1", st.Expired)
	}
	if st.Pending != 0 {
		t.Fatalf("pending = %d, want 0", st.Pending)
	}
}

// TestEngineEntityOverflow: entities beyond MaxEntities fold into
// "_overflow" so metric label cardinality stays bounded.
func TestEngineEntityOverflow(t *testing.T) {
	e := newTestEngine(t, Config{Horizon: 1, Window: 8, MaxEntities: 2})
	for _, name := range []string{"a", "b", "c", "d", ""} {
		e.RecordForecast(name, 0, []float64{2})
		e.Observe(name, 1, []float64{1})
	}
	e.Flush()
	st := e.Status()
	names := make([]string, len(st.Entities))
	for i, es := range st.Entities {
		names[i] = es.Entity
	}
	joined := strings.Join(names, ",")
	if len(st.Entities) != 3 || !strings.Contains(joined, "_overflow") {
		t.Fatalf("entities = %v, want a, b and _overflow", joined)
	}
	// "" and the overflowed entities share _overflow's window; every
	// pair still resolves.
	if st.Resolved != 5 {
		t.Fatalf("resolved = %d, want 5", st.Resolved)
	}
}

// TestEngineSLOTransitions: rules transition pending→ok→breach→ok with
// journal events at every change.
func TestEngineSLOTransitions(t *testing.T) {
	var buf bytes.Buffer
	journal := runlog.New(&buf)
	rules, err := ParseRules("mae<=1@8")
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, Config{
		Horizon: 1, Window: 16, Rules: rules, SLOMinCount: 4, Journal: journal,
	})
	feed := func(t0 int64, n int, errv float64) int64 {
		for i := 0; i < n; i++ {
			e.RecordForecast("m1", t0, []float64{10 + errv})
			e.Observe("m1", t0+1, []float64{10})
			t0++
		}
		return t0
	}
	tt := feed(0, 8, 0) // err 0 → pending → ok
	e.Flush()
	if st := e.Status(); st.SLO[0].State != sloOK {
		t.Fatalf("after good stream: %+v", st.SLO[0])
	}
	tt = feed(tt, 8, 5) // err 5 → breach
	e.Flush()
	if st := e.Status(); st.SLO[0].State != sloBreach || st.SLO[0].Value != 5 {
		t.Fatalf("after bad stream: %+v", st.SLO[0])
	}
	feed(tt, 8, 0) // recover
	e.Flush()
	if st := e.Status(); st.SLO[0].State != sloOK {
		t.Fatalf("after recovery: %+v", st.SLO[0])
	}

	e.Close()
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := runlog.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var states []string
	for _, ev := range events {
		if ev.Type == runlog.TypeSLO {
			states = append(states, ev.Data["state"].(string))
			if ev.Data["rule"] != "mae<=1@8" {
				t.Fatalf("journal rule = %v", ev.Data["rule"])
			}
		}
	}
	want := []string{"ok", "breach", "ok"}
	if strings.Join(states, ",") != strings.Join(want, ",") {
		t.Fatalf("journal SLO states = %v, want %v", states, want)
	}
}

// TestEngineMutationAndDriftEvents: input-statistic steps fire the
// mutation detector; a rising OOR ratio walks the input drift detector
// to alarm; both leave journal events.
func TestEngineMutationAndDriftEvents(t *testing.T) {
	var buf bytes.Buffer
	journal := runlog.New(&buf)
	e := newTestEngine(t, Config{
		Horizon:    1,
		Mutation:   MutationConfig{MedianWidth: 5, Warmup: 16, Cooldown: 8},
		InputDrift: DriftConfig{Baseline: 16, Alpha: 0.5, MinStd: 0.02},
		Journal:    journal,
	})
	dither := func(i int) float64 { return float64(i%2)*2 - 1 }
	tt := int64(0)
	for i := 0; i < 64; i++ { // stationary input level, OOR 0
		e.ObserveInput("m1", tt, 20+dither(i), 0, true)
		tt++
	}
	for i := 0; i < 64; i++ { // level step + OOR surge
		e.ObserveInput("m1", tt, 60+dither(i), 0.5, true)
		tt++
	}
	e.Flush()
	st := e.Status()
	if len(st.Entities) != 1 || len(st.Entities[0].InputMutations) == 0 {
		t.Fatalf("no input mutation detected: %+v", st.Entities)
	}
	fireT := st.Entities[0].InputMutations[0]
	if fireT < 64 || fireT > 64+2*5 {
		t.Fatalf("mutation at t=%d, want within 2 windows of 64", fireT)
	}
	if st.InputDrift.State != "alarm" {
		t.Fatalf("input drift = %q, want alarm", st.InputDrift.State)
	}

	e.Close()
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := runlog.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sawMutation, sawLevel := false, false
	for _, ev := range events {
		if ev.Type != runlog.TypeDrift {
			continue
		}
		switch ev.Data["kind"] {
		case "mutation":
			if ev.Data["signal"] == "input" {
				sawMutation = true
			}
		case "level":
			if ev.Data["signal"] == "input" {
				sawLevel = true
			}
		}
	}
	if !sawMutation || !sawLevel {
		t.Fatalf("journal missing events: mutation=%v level=%v", sawMutation, sawLevel)
	}
}

// TestEngineEventsSubscription: the Events callback sees the same
// mutation fire and drift transitions the journal records, in order,
// with the firing entity attached.
func TestEngineEventsSubscription(t *testing.T) {
	var got []Event
	e := newTestEngine(t, Config{
		Horizon:    1,
		Mutation:   MutationConfig{MedianWidth: 5, Warmup: 16, Cooldown: 8},
		InputDrift: DriftConfig{Baseline: 16, Alpha: 0.5, MinStd: 0.02},
		Events:     func(ev Event) { got = append(got, ev) }, // worker-goroutine only
	})
	dither := func(i int) float64 { return float64(i%2)*2 - 1 }
	tt := int64(0)
	for i := 0; i < 64; i++ {
		e.ObserveInput("m1", tt, 20+dither(i), 0, true)
		tt++
	}
	for i := 0; i < 64; i++ {
		e.ObserveInput("m1", tt, 60+dither(i), 0.5, true)
		tt++
	}
	e.Flush()

	var mutations, drifts []Event
	for _, ev := range got {
		switch ev.Kind {
		case "mutation":
			mutations = append(mutations, ev)
		case "drift":
			drifts = append(drifts, ev)
		default:
			t.Fatalf("unexpected event kind %q", ev.Kind)
		}
	}
	if len(mutations) == 0 {
		t.Fatal("no mutation event delivered")
	}
	m := mutations[0]
	if m.Signal != "input" || m.Entity != "m1" || m.State != "" {
		t.Fatalf("mutation event = %+v", m)
	}
	if m.T < 64 || m.T > 64+2*5 {
		t.Fatalf("mutation event at t=%d, want within 2 windows of 64", m.T)
	}
	if len(drifts) == 0 || drifts[len(drifts)-1].State != "alarm" {
		t.Fatalf("drift events = %+v, want a transition ending in alarm", drifts)
	}
	for _, d := range drifts {
		if d.Signal != "input" || d.Entity != "" {
			t.Fatalf("drift event = %+v", d)
		}
	}
}

// TestEngineMetrics: the registry exposes the engine's gauges and
// counters, refreshed at scrape time.
func TestEngineMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	e := newTestEngine(t, Config{Horizon: 2, Window: 8, Registry: reg})
	e.RecordForecast("m1", 0, []float64{4, 5})
	e.Observe("m1", 1, []float64{3, 3})
	e.Flush()

	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"rptcn_quality_resolved_pairs_total 2",
		`rptcn_quality_mae{step="all"} 1.5`,
		`rptcn_quality_mae{step="1"} 1`,
		`rptcn_quality_mae{step="2"} 2`,
		`rptcn_quality_bias{step="all"} 1.5`,
		"rptcn_quality_pending_forecasts 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestEngineCloseLifecycle: Close is idempotent, post-Close calls are
// safe no-ops, and scrapes after Close do not hang.
func TestEngineCloseLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Config{Horizon: 1, Registry: reg})
	e.RecordForecast("m1", 0, []float64{1})
	e.Close()
	e.Close()
	e.RecordForecast("m1", 1, []float64{2})
	e.Observe("m1", 1, []float64{2})
	e.ObserveInput("m1", 1, 2, 0, true)
	e.Flush()
	if st := e.Status(); st.Resolved != 0 {
		t.Fatalf("post-close status = %+v", st)
	}
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
}

// TestEngineInvalidActuals: NaN/Inf actuals are counted and discarded,
// never poisoning the windows.
func TestEngineInvalidActuals(t *testing.T) {
	e := newTestEngine(t, Config{Horizon: 1, Window: 8})
	e.RecordForecast("m1", 0, []float64{1})
	e.RecordForecast("m1", 1, []float64{1})
	e.Observe("m1", 1, []float64{math.NaN()})
	e.Observe("m1", 2, []float64{math.Inf(1)})
	e.Flush()
	st := e.Status()
	if st.Resolved != 0 {
		t.Fatalf("resolved = %d, want 0", st.Resolved)
	}
	if st.Aggregate.Count != 0 {
		t.Fatalf("window count = %d, want 0", st.Aggregate.Count)
	}
}
